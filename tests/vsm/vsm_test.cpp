// Virtual shared memory tests: fault behaviour, coherence protocol
// invariants, false sharing, and end-to-end DSM application runs.
#include "vsm/vsm.hpp"

#include <gtest/gtest.h>

#include "gen/apps.hpp"
#include "gen/vsm_apps.hpp"
#include "machine/params.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "trace/stream.hpp"

namespace merm::vsm {
namespace {

using trace::DataType;
using trace::Operation;

machine::MachineParams test_machine(std::uint32_t nodes) {
  machine::MachineParams m = machine::presets::generic_risc(nodes, 1);
  m.topology.kind = machine::TopologyKind::kRing;
  m.topology.dims = {nodes, 1};
  return m;
}

struct Rig {
  sim::Simulator sim;
  node::Machine machine;
  VsmSystem vsm;

  explicit Rig(std::uint32_t nodes, VsmParams params = {})
      : machine(sim, test_machine(nodes)), vsm(machine, params) {}

  std::uint64_t shared_addr(std::uint64_t offset = 0) const {
    return vsm.params().shared_base + offset;
  }
};

// Drives one node's agent directly (runtime-level tests).
sim::Process touch(Rig& rig, trace::NodeId node, std::uint64_t addr,
                   bool write, sim::Tick* done_at = nullptr) {
  co_await rig.vsm.agent(node).ensure(addr, write);
  if (done_at != nullptr) *done_at = rig.sim.now();
}

TEST(VsmTest, SharedRangeDetection) {
  Rig rig(2);
  EXPECT_FALSE(rig.vsm.agent(0).is_shared(0x1000));
  EXPECT_TRUE(rig.vsm.agent(0).is_shared(rig.shared_addr()));
  EXPECT_TRUE(rig.vsm.agent(0).is_shared(rig.shared_addr(12345)));
}

TEST(VsmTest, SharedBaseMatchesGeneratorLayout) {
  // The trace generator and the DSM must agree on the shared region.
  EXPECT_EQ(gen::AddressLayout{}.shared_base, VsmParams{}.shared_base);
}

TEST(VsmTest, FirstReadFaultsThenHits) {
  Rig rig(4);
  const std::uint64_t addr = rig.shared_addr(5 * 4096);  // homed at node 1
  sim::Tick first = 0;
  sim::Tick second = 0;
  rig.sim.spawn([](Rig& r, std::uint64_t a, sim::Tick* t1,
                   sim::Tick* t2) -> sim::Process {
    const sim::Tick s0 = r.sim.now();
    co_await r.vsm.agent(0).ensure(a, false);
    *t1 = r.sim.now() - s0;
    const sim::Tick s1 = r.sim.now();
    co_await r.vsm.agent(0).ensure(a + 8, false);  // same page
    *t2 = r.sim.now() - s1;
  }(rig, addr, &first, &second));
  rig.sim.run();
  EXPECT_GT(first, 0u);
  EXPECT_EQ(second, 0u);  // hit: free at the DSM level
  EXPECT_EQ(rig.vsm.agent(0).read_faults.value(), 1u);
  EXPECT_EQ(rig.vsm.agent(0).mode_of(addr), PageMode::kRead);
}

TEST(VsmTest, HomeLocalFaultAvoidsNetwork) {
  Rig rig(4);
  // Page 0 is homed at node 0; a fault by node 0 needs no messages.
  const auto messages_before = rig.machine.network().messages.value();
  rig.sim.spawn(touch(rig, 0, rig.shared_addr(0), false));
  rig.sim.run();
  EXPECT_EQ(rig.machine.network().messages.value(), messages_before);
  EXPECT_EQ(rig.vsm.agent(0).read_faults.value(), 1u);
}

TEST(VsmTest, RemoteFaultMovesPageTraffic) {
  Rig rig(4);
  // Page 1 homed at node 1; node 3 reads it: request + grant messages.
  rig.sim.spawn(touch(rig, 3, rig.shared_addr(4096), false));
  rig.sim.run();
  EXPECT_GE(rig.machine.network().messages.value(), 2u);
  // The grant carried a page: delivered bytes >= page size.
  EXPECT_GE(rig.machine.network().bytes_delivered.value(),
            rig.vsm.params().page_bytes);
}

TEST(VsmTest, WriteFaultInvalidatesReaders) {
  Rig rig(4);
  const std::uint64_t addr = rig.shared_addr(2 * 4096);
  // Nodes 0 and 3 read the page, then node 1 writes it.
  rig.sim.spawn(touch(rig, 0, addr, false));
  rig.sim.spawn(touch(rig, 3, addr, false));
  rig.sim.run();
  EXPECT_EQ(rig.vsm.agent(0).mode_of(addr), PageMode::kRead);
  EXPECT_EQ(rig.vsm.agent(3).mode_of(addr), PageMode::kRead);

  rig.sim.spawn(touch(rig, 1, addr, true));
  rig.sim.run();
  EXPECT_EQ(rig.vsm.agent(1).mode_of(addr), PageMode::kWrite);
  EXPECT_EQ(rig.vsm.agent(0).mode_of(addr), PageMode::kInvalid);
  EXPECT_EQ(rig.vsm.agent(3).mode_of(addr), PageMode::kInvalid);
  EXPECT_EQ(rig.vsm.total_invalidations(), 2u);
  EXPECT_EQ(rig.vsm.single_writer_violations(), 0u);
}

TEST(VsmTest, ReadOfDirtyPageDowngradesWriter) {
  Rig rig(4);
  const std::uint64_t addr = rig.shared_addr(3 * 4096);
  rig.sim.spawn(touch(rig, 2, addr, true));
  rig.sim.run();
  ASSERT_EQ(rig.vsm.agent(2).mode_of(addr), PageMode::kWrite);

  rig.sim.spawn(touch(rig, 0, addr, false));
  rig.sim.run();
  EXPECT_EQ(rig.vsm.agent(2).mode_of(addr), PageMode::kRead);
  EXPECT_EQ(rig.vsm.agent(0).mode_of(addr), PageMode::kRead);
  EXPECT_EQ(rig.vsm.single_writer_violations(), 0u);
}

TEST(VsmTest, WriteUpgradeFromReadCopy) {
  Rig rig(2);
  const std::uint64_t addr = rig.shared_addr(7 * 4096);
  rig.sim.spawn(touch(rig, 0, addr, false));
  rig.sim.run();
  rig.sim.spawn(touch(rig, 0, addr, true));
  rig.sim.run();
  EXPECT_EQ(rig.vsm.agent(0).mode_of(addr), PageMode::kWrite);
  EXPECT_EQ(rig.vsm.agent(0).write_faults.value(), 1u);
}

TEST(VsmTest, WriteOwnershipMigrates) {
  Rig rig(4);
  const std::uint64_t addr = rig.shared_addr(9 * 4096);
  for (trace::NodeId writer : {2, 3, 1, 2}) {
    rig.sim.spawn(touch(rig, writer, addr, true));
    rig.sim.run();
    EXPECT_EQ(rig.vsm.agent(writer).mode_of(addr), PageMode::kWrite);
    EXPECT_EQ(rig.vsm.single_writer_violations(), 0u);
  }
}

// Property: under concurrent random access from every node, the
// single-writer/multiple-reader invariant holds at every quiescent point.
class VsmStressTest : public ::testing::TestWithParam<int> {};

TEST_P(VsmStressTest, SingleWriterInvariantUnderConcurrency) {
  Rig rig(4);
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (trace::NodeId node = 0; node < 4; ++node) {
    rig.sim.spawn([](Rig& r, trace::NodeId self,
                     std::uint64_t seed) -> sim::Process {
      sim::Rng local(seed);
      for (int i = 0; i < 60; ++i) {
        const std::uint64_t addr =
            r.shared_addr(local.next_below(6) * 4096 + local.next_below(512));
        co_await r.vsm.agent(self).ensure(addr, local.chance(0.4));
        co_await r.sim.delay(local.next_below(20) * sim::kTicksPerMicrosecond);
      }
    }(rig, node, rng.next()));
  }
  rig.sim.run();
  EXPECT_EQ(rig.vsm.single_writer_violations(), 0u);
  EXPECT_GT(rig.vsm.total_faults(), 8u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VsmStressTest, ::testing::Range(1, 7));

TEST(VsmTest, FalseSharingCausesFaultPingPong) {
  // Two nodes repeatedly write adjacent words.  In one page: every write
  // faults (ping-pong).  Page-aligned: only the first write faults.
  auto run = [](bool padded) {
    Rig rig(2);
    const std::uint64_t a0 = rig.shared_addr(0);
    const std::uint64_t a1 = padded ? rig.shared_addr(4096) : a0 + 8;
    for (trace::NodeId node = 0; node < 2; ++node) {
      rig.sim.spawn([](Rig& r, trace::NodeId self, std::uint64_t addr)
                        -> sim::Process {
        for (int i = 0; i < 10; ++i) {
          co_await r.vsm.agent(self).ensure(addr, true);
          co_await r.sim.delay(50 * sim::kTicksPerMicrosecond);
        }
      }(rig, node, node == 0 ? a0 : a1));
    }
    rig.sim.run();
    return rig.vsm.total_faults();
  };
  const auto faults_shared_page = run(false);
  const auto faults_padded = run(true);
  EXPECT_GT(faults_shared_page, 4 * faults_padded);
  EXPECT_EQ(faults_padded, 2u);  // one cold fault per node
}

TEST(VsmTest, PageSizeTradesFaultsForBytes) {
  // Bigger pages: fewer faults (spatial prefetch), more bytes moved per
  // fault.
  auto run = [](std::uint64_t page_bytes) {
    VsmParams p;
    p.page_bytes = page_bytes;
    Rig rig(2, p);
    rig.sim.spawn([](Rig& r) -> sim::Process {
      for (std::uint64_t off = 0; off < 64 * 1024; off += 64) {
        co_await r.vsm.agent(1).ensure(r.shared_addr(off), false);
      }
    }(rig));
    rig.sim.run();
    return std::make_pair(rig.vsm.total_faults(),
                          rig.machine.network().bytes_delivered.value());
  };
  const auto [faults_small, bytes_small] = run(1024);
  const auto [faults_large, bytes_large] = run(16 * 1024);
  EXPECT_GT(faults_small, faults_large * 8);
  EXPECT_GT(bytes_large, 0u);
}

// -- end-to-end: DSM applications on the detailed machine --

struct VsmAppCase {
  const char* name;
  std::uint32_t nodes;
  gen::AppFn app;
};

class VsmAppTest : public ::testing::TestWithParam<VsmAppCase> {};

TEST_P(VsmAppTest, RunsToCompletionWithCoherentOutcome) {
  const VsmAppCase& c = GetParam();
  Rig rig(c.nodes);
  auto workload = gen::make_offline_workload(c.nodes, c.app);
  const auto handles = rig.vsm.launch_detailed(workload);
  rig.sim.run();
  EXPECT_TRUE(node::Machine::all_finished(handles)) << c.name;
  EXPECT_GT(rig.vsm.total_faults(), 0u) << c.name;
  EXPECT_EQ(rig.vsm.single_writer_violations(), 0u) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Apps, VsmAppTest,
    ::testing::Values(
        VsmAppCase{"vsm_stencil", 4,
                   [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
                     gen::vsm_stencil_spmd(a, s, n,
                                           gen::VsmStencilParams{32, 2});
                   }},
        VsmAppCase{"vsm_reduction_padded", 4,
                   [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
                     gen::vsm_reduction_spmd(
                         a, s, n, gen::VsmReductionParams{64, 2, true});
                   }},
        VsmAppCase{"vsm_reduction_packed", 4,
                   [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
                     gen::vsm_reduction_spmd(
                         a, s, n, gen::VsmReductionParams{64, 2, false});
                   }},
        VsmAppCase{"vsm_broadcast", 4,
                   [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
                     gen::vsm_broadcast_spmd(
                         a, s, n, gen::VsmBroadcastParams{256, 2});
                   }}),
    [](const ::testing::TestParamInfo<VsmAppCase>& info) {
      return info.param.name;
    });

TEST(VsmTest, StencilDsmVsExplicitMessages) {
  // The same numerical work, programmed two ways: explicit halo messages vs
  // shared-memory accesses.  Both must complete; the DSM version moves
  // whole pages, so it ships at least as many bytes.
  constexpr std::uint32_t kNodes = 4;
  Rig dsm(kNodes);
  auto w1 = gen::make_offline_workload(
      kNodes, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
        gen::vsm_stencil_spmd(a, s, n, gen::VsmStencilParams{32, 2});
      });
  const auto h1 = dsm.vsm.launch_detailed(w1);
  dsm.sim.run();
  ASSERT_TRUE(node::Machine::all_finished(h1));
  const auto dsm_bytes = dsm.machine.network().bytes_delivered.value();

  sim::Simulator sim2;
  node::Machine m2(sim2, test_machine(kNodes));
  auto w2 = gen::make_offline_workload(
      kNodes, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
        gen::stencil_spmd(a, s, n, gen::StencilParams{32, 2});
      });
  const auto h2 = m2.launch_detailed(w2);
  sim2.run();
  ASSERT_TRUE(node::Machine::all_finished(h2));
  const auto msg_bytes = m2.network().bytes_delivered.value();

  EXPECT_GT(dsm_bytes, msg_bytes);
}

TEST(VsmTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Rig rig(4);
    auto w = gen::make_offline_workload(
        4, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
          gen::vsm_stencil_spmd(a, s, n, gen::VsmStencilParams{32, 2});
        });
    rig.vsm.launch_detailed(w);
    rig.sim.run();
    return std::make_tuple(rig.sim.now(), rig.vsm.total_faults(),
                           rig.machine.network().messages.value());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace merm::vsm
