// Network-level fault injection: rerouting around dead links, loss of
// messages to dead elements and probabilistic drops, and corruption.
#include <gtest/gtest.h>

#include <memory>

#include "fault/fault.hpp"
#include "network/network.hpp"
#include "sim/simulator.hpp"

namespace merm::network {
namespace {

constexpr sim::Tick kUs = sim::kTicksPerMicrosecond;

// A 2x2 store-and-forward mesh with an attached FaultPlan.
struct FaultRig {
  sim::Simulator sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<fault::FaultPlan> plan;

  explicit FaultRig(const machine::FaultParams& faults) {
    machine::TopologyParams topo;
    topo.kind = machine::TopologyKind::kMesh2D;
    topo.dims = {2, 2};
    machine::RouterParams router;
    router.switching = machine::Switching::kStoreAndForward;
    machine::LinkParams link;
    net = std::make_unique<Network>(sim, topo, router, link);
    plan = std::make_unique<fault::FaultPlan>(faults, net->topology());
    net->set_fault_injector(plan.get());
    plan->arm(sim);
  }

  TransmitOutcome transmit_at(sim::Tick when, trace::NodeId src,
                              trace::NodeId dst, std::uint64_t bytes) {
    TransmitOutcome out;
    sim.spawn([](FaultRig& r, sim::Tick at, trace::NodeId a, trace::NodeId b,
                 std::uint64_t sz, TransmitOutcome* o) -> sim::Process {
      co_await r.sim.delay(at - r.sim.now());
      *o = co_await r.net->transmit(a, b, sz);
    }(*this, when, src, dst, bytes, &out));
    sim.run();
    return out;
  }
};

TEST(NetworkFaultTest, DeliversViaRerouteAroundDeadLink) {
  machine::FaultParams faults;
  faults.link_events.push_back({.a = 0, .b = 1, .down_at = 0});
  FaultRig rig(faults);

  // Dimension-order 0 -> 1 would use the dead link; the fault tables send
  // the message 0 -> 2 -> 3 -> 1 instead.
  const TransmitOutcome out = rig.transmit_at(10 * kUs, 0, 1, 256);
  EXPECT_TRUE(out.delivered);
  EXPECT_TRUE(out.rerouted);
  EXPECT_FALSE(out.corrupted);
  EXPECT_EQ(rig.net->messages_rerouted.value(), 1u);
  EXPECT_EQ(rig.net->messages_dropped.value(), 0u);
  EXPECT_EQ(rig.net->bytes_delivered.value(), 256u);
  EXPECT_EQ(rig.net->message_hops.max(), 3.0);  // the detour, not 1 hop
}

TEST(NetworkFaultTest, UntouchedRouteIsNotCountedAsReroute) {
  machine::FaultParams faults;
  faults.link_events.push_back({.a = 0, .b = 1, .down_at = 0});
  FaultRig rig(faults);

  // 2 -> 3 does not pass the dead 0<->1 link; the degraded table matches
  // the fault-free path, so nothing is recorded as a detour.
  const TransmitOutcome out = rig.transmit_at(10 * kUs, 2, 3, 64);
  EXPECT_TRUE(out.delivered);
  EXPECT_FALSE(out.rerouted);
  EXPECT_EQ(rig.net->messages_rerouted.value(), 0u);
}

TEST(NetworkFaultTest, UnreachableDestinationFailsTheTransmit) {
  machine::FaultParams faults;
  faults.node_events.push_back({.node = 3, .down_at = 0});
  FaultRig rig(faults);

  const TransmitOutcome out = rig.transmit_at(10 * kUs, 0, 3, 128);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(rig.net->messages_unreachable.value(), 1u);
  EXPECT_EQ(rig.net->bytes_delivered.value(), 0u);
}

TEST(NetworkFaultTest, CertainDropLosesEveryDataMessage) {
  machine::FaultParams faults;
  faults.drop_probability = 1.0;
  FaultRig rig(faults);

  const TransmitOutcome out = rig.transmit_at(10 * kUs, 0, 1, 128);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(rig.net->messages_dropped.value(), 1u);

  // Control traffic (acknowledgements) is exempt from probabilistic loss.
  TransmitOutcome ctl;
  rig.sim.spawn([](FaultRig& r, TransmitOutcome* o) -> sim::Process {
    *o = co_await r.net->transmit(0, 1, 0, /*control=*/true);
  }(rig, &ctl));
  rig.sim.run();
  EXPECT_TRUE(ctl.delivered);
}

TEST(NetworkFaultTest, CertainCorruptionDeliversNothingUsable) {
  machine::FaultParams faults;
  faults.corrupt_probability = 1.0;
  FaultRig rig(faults);

  const TransmitOutcome out = rig.transmit_at(10 * kUs, 0, 1, 128);
  EXPECT_FALSE(out.delivered);
  EXPECT_TRUE(out.corrupted);
  EXPECT_EQ(rig.net->messages_corrupted.value(), 1u);
}

TEST(NetworkFaultTest, MidFlightLinkDeathDropsThePacket) {
  machine::FaultParams faults;
  // Route 0 -> 1 -> 3: the second hop dies while the packet is still
  // serializing on the first (~400 us for 1 KiB at the default bandwidth),
  // so the store-and-forward hop check finds it dead on arrival at node 1.
  faults.link_events.push_back({.a = 1, .b = 3, .down_at = 100 * kUs});
  FaultRig rig(faults);

  const TransmitOutcome out = rig.transmit_at(0, 0, 3, 1024);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(rig.net->messages_dropped.value(), 1u);
  EXPECT_GT(rig.net->packets_dropped.value(), 0u);
}

}  // namespace
}  // namespace merm::network
