// Topology tests: structural invariants across all kinds (parameterized),
// plus kind-specific routing checks.
#include "network/topology.hpp"

#include <gtest/gtest.h>

namespace merm::network {
namespace {

using machine::RoutingAlgorithm;
using machine::TopologyKind;
using machine::TopologyParams;

TopologyParams make_params(TopologyKind kind, std::uint32_t a,
                           std::uint32_t b = 1) {
  TopologyParams p;
  p.kind = kind;
  p.dims = {a, b};
  return p;
}

class TopologyKindTest : public ::testing::TestWithParam<TopologyParams> {};

TEST_P(TopologyKindTest, PortWiringIsSymmetric) {
  const Topology t = Topology::make(GetParam());
  for (NodeId u = 0; u < static_cast<NodeId>(t.node_count()); ++u) {
    for (std::uint32_t p = 0; p < t.port_count(u); ++p) {
      const auto [v, q] = t.neighbor(u, p);
      ASSERT_GE(v, 0);
      ASSERT_LT(v, static_cast<NodeId>(t.node_count()));
      const auto back = t.neighbor(v, q);
      EXPECT_EQ(back.node, u) << "u=" << u << " p=" << p;
      EXPECT_EQ(back.port, p) << "u=" << u << " p=" << p;
    }
  }
}

TEST_P(TopologyKindTest, DistancesAreAMetric) {
  const Topology t = Topology::make(GetParam());
  const auto n = static_cast<NodeId>(t.node_count());
  for (NodeId a = 0; a < n; ++a) {
    EXPECT_EQ(t.hop_distance(a, a), 0u);
    for (NodeId b = 0; b < n; ++b) {
      EXPECT_EQ(t.hop_distance(a, b), t.hop_distance(b, a));
      if (a != b) {
        EXPECT_GE(t.hop_distance(a, b), 1u);
      }
    }
  }
}

TEST_P(TopologyKindTest, ShortestPathRoutingReachesEveryDest) {
  const Topology t = Topology::make(GetParam());
  const auto n = static_cast<NodeId>(t.node_count());
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      const auto path = t.path(RoutingAlgorithm::kShortestPath, a, b);
      EXPECT_EQ(path.size(), t.hop_distance(a, b));
    }
  }
}

TEST_P(TopologyKindTest, DimensionOrderRoutingReachesEveryDest) {
  const Topology t = Topology::make(GetParam());
  const auto n = static_cast<NodeId>(t.node_count());
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      const auto path = t.path(RoutingAlgorithm::kDimensionOrder, a, b);
      // Dimension-order is minimal on all our topologies.
      EXPECT_EQ(path.size(), t.hop_distance(a, b))
          << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, TopologyKindTest,
    ::testing::Values(
        make_params(TopologyKind::kRing, 2), make_params(TopologyKind::kRing, 5),
        make_params(TopologyKind::kRing, 8),
        make_params(TopologyKind::kMesh2D, 1, 4),
        make_params(TopologyKind::kMesh2D, 4, 4),
        make_params(TopologyKind::kMesh2D, 5, 3),
        make_params(TopologyKind::kTorus2D, 4, 4),
        make_params(TopologyKind::kTorus2D, 2, 2),
        make_params(TopologyKind::kTorus2D, 5, 4),
        make_params(TopologyKind::kHypercube, 1),
        make_params(TopologyKind::kHypercube, 2),
        make_params(TopologyKind::kHypercube, 8),
        make_params(TopologyKind::kHypercube, 16),
        make_params(TopologyKind::kStar, 6),
        make_params(TopologyKind::kFullyConnected, 5)));

TEST(TopologyTest, MeshDiameterAndDegree) {
  const Topology t = Topology::make(make_params(TopologyKind::kMesh2D, 4, 4));
  EXPECT_EQ(t.node_count(), 16u);
  EXPECT_EQ(t.diameter(), 6u);  // corner to corner
  EXPECT_EQ(t.port_count(0), 2u);   // corner
  EXPECT_EQ(t.port_count(5), 4u);   // interior
}

TEST(TopologyTest, TorusWrapsShrinkDiameter) {
  const Topology mesh = Topology::make(make_params(TopologyKind::kMesh2D, 4, 4));
  const Topology torus =
      Topology::make(make_params(TopologyKind::kTorus2D, 4, 4));
  EXPECT_EQ(torus.diameter(), 4u);
  EXPECT_LT(torus.diameter(), mesh.diameter());
}

TEST(TopologyTest, HypercubeDiameterIsLogN) {
  const Topology t = Topology::make(make_params(TopologyKind::kHypercube, 16));
  EXPECT_EQ(t.diameter(), 4u);
  EXPECT_EQ(t.port_count(0), 4u);
}

TEST(TopologyTest, HypercubeEcubeFixesLowestBitFirst) {
  const Topology t = Topology::make(make_params(TopologyKind::kHypercube, 8));
  // From 0 to 6 (binary 110): fix bit 1 then bit 2.
  const auto path = t.path(RoutingAlgorithm::kDimensionOrder, 0, 6);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 1u);
  EXPECT_EQ(path[1], 2u);
}

TEST(TopologyTest, MeshXyRoutesXFirst) {
  const Topology t = Topology::make(make_params(TopologyKind::kMesh2D, 4, 4));
  // From (0,0)=0 to (2,2)=10: two X hops then two Y hops.
  NodeId here = 0;
  std::vector<NodeId> visited{here};
  for (std::uint32_t port : t.path(RoutingAlgorithm::kDimensionOrder, 0, 10)) {
    here = t.neighbor(here, port).node;
    visited.push_back(here);
  }
  EXPECT_EQ(visited, (std::vector<NodeId>{0, 1, 2, 6, 10}));
}

TEST(TopologyTest, RingPicksShorterDirection) {
  const Topology t = Topology::make(make_params(TopologyKind::kRing, 8));
  EXPECT_EQ(t.hop_distance(0, 3), 3u);
  EXPECT_EQ(t.hop_distance(0, 6), 2u);  // around the back
  NodeId here = 0;
  const auto path = t.path(RoutingAlgorithm::kDimensionOrder, 0, 6);
  ASSERT_EQ(path.size(), 2u);
  here = t.neighbor(here, path[0]).node;
  EXPECT_EQ(here, 7);  // went backwards
}

TEST(TopologyTest, StarRoutesThroughHub) {
  const Topology t = Topology::make(make_params(TopologyKind::kStar, 5));
  EXPECT_EQ(t.hop_distance(1, 2), 2u);
  EXPECT_EQ(t.hop_distance(0, 3), 1u);
  const auto path = t.path(RoutingAlgorithm::kDimensionOrder, 1, 4);
  EXPECT_EQ(path.size(), 2u);
}

TEST(TopologyTest, FullyConnectedIsDiameterOne) {
  const Topology t =
      Topology::make(make_params(TopologyKind::kFullyConnected, 6));
  EXPECT_EQ(t.diameter(), 1u);
  EXPECT_EQ(t.port_count(0), 5u);
}

TEST(TopologyTest, LinkCounts) {
  const Topology mesh = Topology::make(make_params(TopologyKind::kMesh2D, 3, 3));
  // 2*(2*3) horizontal + 2*(2*3) vertical = 24 unidirectional links.
  EXPECT_EQ(mesh.link_count(), 24u);
  const Topology full =
      Topology::make(make_params(TopologyKind::kFullyConnected, 4));
  EXPECT_EQ(full.link_count(), 12u);
}

TEST(TopologyTest, RejectsInvalidConfigurations) {
  EXPECT_THROW(Topology::make(make_params(TopologyKind::kHypercube, 6)),
               std::invalid_argument);
  EXPECT_THROW(Topology::make(make_params(TopologyKind::kMesh2D, 0, 4)),
               std::invalid_argument);
  TopologyParams zero;
  zero.kind = TopologyKind::kRing;
  zero.dims = {0, 1};
  EXPECT_THROW(Topology::make(zero), std::invalid_argument);
}

TEST(TopologyTest, SingleNodeTopologiesWork) {
  for (auto kind : {TopologyKind::kMesh2D, TopologyKind::kRing,
                    TopologyKind::kHypercube, TopologyKind::kStar,
                    TopologyKind::kFullyConnected}) {
    const Topology t = Topology::make(make_params(kind, 1, 1));
    EXPECT_EQ(t.node_count(), 1u) << static_cast<int>(kind);
    EXPECT_EQ(t.port_count(0), 0u);
    EXPECT_EQ(t.diameter(), 0u);
  }
}

}  // namespace
}  // namespace merm::network
