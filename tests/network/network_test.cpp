// Network model tests: switching-strategy latencies against the analytic
// zero-load formulas, packetization, contention, and statistics.
#include "network/network.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace merm::network {
namespace {

using machine::RouterParams;
using machine::RoutingAlgorithm;
using machine::Switching;
using machine::TopologyKind;
using machine::TopologyParams;

constexpr sim::Tick kNs = sim::kTicksPerNanosecond;

struct Rig {
  sim::Simulator sim;
  std::unique_ptr<Network> net;

  explicit Rig(Switching sw, std::uint32_t buffer_flits = 4096) {
    TopologyParams topo;
    topo.kind = TopologyKind::kRing;
    topo.dims = {8, 1};
    RouterParams router;
    router.switching = sw;
    router.routing = RoutingAlgorithm::kDimensionOrder;
    router.frequency_hz = 100e6;          // 10 ns / cycle
    router.routing_decision_cycles = 1;   // 10 ns per hop
    router.header_bytes = 8;
    router.flit_bytes = 4;                // 40 ns per flit
    router.max_packet_bytes = 4096;
    router.input_buffer_flits = buffer_flits;
    machine::LinkParams link;
    link.bandwidth_bytes_per_s = 100e6;   // 10 ns per byte
    link.propagation_delay = 0;
    net = std::make_unique<Network>(sim, topo, router, link);
  }

  sim::Tick timed_transmit(trace::NodeId src, trace::NodeId dst,
                           std::uint64_t bytes) {
    sim::Tick latency = 0;
    sim.spawn([](sim::Simulator& s, Network& n, trace::NodeId a,
                 trace::NodeId b, std::uint64_t sz,
                 sim::Tick* out) -> sim::Process {
      const sim::Tick start = s.now();
      co_await n.transmit(a, b, sz);
      *out = s.now() - start;
    }(sim, *net, src, dst, bytes, &latency));
    sim.run();
    return latency;
  }
};

TEST(NetworkTest, StoreAndForwardLatencyIsPerHopSerialization) {
  Rig rig(Switching::kStoreAndForward);
  // 92 B payload + 8 B header = 100 B packet = 1000 ns serialization;
  // 3 hops * (10 routing + 1000) = 3030 ns.
  EXPECT_EQ(rig.timed_transmit(0, 3, 92), 3030 * kNs);
  EXPECT_EQ(rig.timed_transmit(0, 3, 92),
            rig.net->zero_load_packet_latency(92, 3));
}

TEST(NetworkTest, WormholeLatencyPipelinesBody) {
  Rig rig(Switching::kWormhole);
  // 3 hops * (10 routing + 40 flit) + 960 body (1000 - header flit) = 1110 ns.
  EXPECT_EQ(rig.timed_transmit(0, 3, 92), 1110 * kNs);
  EXPECT_EQ(rig.timed_transmit(0, 3, 92),
            rig.net->zero_load_packet_latency(92, 3));
}

TEST(NetworkTest, VirtualCutThroughMatchesWormholeAtZeroLoad) {
  Rig rig(Switching::kVirtualCutThrough);
  EXPECT_EQ(rig.timed_transmit(0, 3, 92), 1110 * kNs);
}

TEST(NetworkTest, WormholeBeatsStoreAndForwardIncreasinglyWithHops) {
  for (std::uint32_t hops = 1; hops <= 3; ++hops) {
    Rig saf(Switching::kStoreAndForward);
    Rig wh(Switching::kWormhole);
    const auto dst = static_cast<trace::NodeId>(hops);
    const sim::Tick t_saf = saf.timed_transmit(0, dst, 492);
    const sim::Tick t_wh = wh.timed_transmit(0, dst, 492);
    if (hops == 1) {
      EXPECT_LE(t_wh, t_saf + 1);
    } else {
      EXPECT_LT(t_wh, t_saf);
    }
  }
}

TEST(NetworkTest, SingleHopLatencyScalesWithMessageSize) {
  Rig rig(Switching::kStoreAndForward);
  const sim::Tick small = rig.timed_transmit(0, 1, 16);
  const sim::Tick large = rig.timed_transmit(0, 1, 1600);
  EXPECT_GT(large, 10 * small / 2);
}

TEST(NetworkTest, PacketizationSplitsLargeMessages) {
  Rig rig(Switching::kWormhole);
  EXPECT_EQ(rig.net->packet_count(0), 1u);     // control message
  EXPECT_EQ(rig.net->packet_count(1), 1u);
  EXPECT_EQ(rig.net->packet_count(4096), 1u);
  EXPECT_EQ(rig.net->packet_count(4097), 2u);
  EXPECT_EQ(rig.net->packet_count(3 * 4096 + 1), 4u);
  rig.timed_transmit(0, 2, 10000);  // 3 packets
  EXPECT_EQ(rig.net->packets.value(), 3u);
  EXPECT_EQ(rig.net->messages.value(), 1u);
}

TEST(NetworkTest, MultiPacketMessagePipelinesAcrossHops) {
  // Two packets over two hops: the second packet enters hop 1 while the
  // first crosses hop 2, so total < 2x single-packet latency (SAF).
  Rig rig(Switching::kStoreAndForward);
  const sim::Tick one = rig.timed_transmit(0, 2, 4096);
  Rig rig2(Switching::kStoreAndForward);
  const sim::Tick two = rig2.timed_transmit(0, 2, 8192);
  EXPECT_LT(two, 2 * one);
  EXPECT_GT(two, one);
}

TEST(NetworkTest, SelfSendCompletesInstantly) {
  Rig rig(Switching::kWormhole);
  EXPECT_EQ(rig.timed_transmit(3, 3, 1 << 20), 0u);
  EXPECT_EQ(rig.net->messages.value(), 1u);
  EXPECT_EQ(rig.net->packets.value(), 0u);
}

TEST(NetworkTest, ContendingMessagesSerializeOnSharedLink) {
  Rig rig(Switching::kStoreAndForward);
  sim::Tick done_a = 0;
  sim::Tick done_b = 0;
  auto send = [&](trace::NodeId src, trace::NodeId dst, sim::Tick* out)
      -> sim::Process {
    co_await rig.net->transmit(src, dst, 92);
    *out = rig.sim.now();
  };
  // Both use link 0->1 at t=0.
  rig.sim.spawn(send(0, 1, &done_a));
  rig.sim.spawn(send(0, 1, &done_b));
  rig.sim.run();
  EXPECT_EQ(done_a, 1010 * kNs);
  EXPECT_EQ(done_b, 2020 * kNs);
}

TEST(NetworkTest, WormholeHoldsPathVctReleasesEarly) {
  // Message A (long) from 0 to 3; message B from 1 to 2 uses a middle link.
  // Under wormhole, A holds 1->2 until its tail reaches node 3; under VCT
  // (big buffers) the link frees as soon as A's tail passed it, so B
  // finishes strictly earlier.
  auto run = [](Switching sw) {
    Rig rig(sw);
    sim::Tick done_b = 0;
    rig.sim.spawn([](Rig& r) -> sim::Process {
      co_await r.net->transmit(0, 3, 3000);
    }(rig));
    rig.sim.spawn([](Rig& r, sim::Tick* out) -> sim::Process {
      co_await r.sim.delay(100 * kNs);  // A is already using 1->2
      co_await r.net->transmit(1, 2, 92);
      *out = r.sim.now();
    }(rig, &done_b));
    rig.sim.run();
    return done_b;
  };
  const sim::Tick b_wormhole = run(Switching::kWormhole);
  const sim::Tick b_vct = run(Switching::kVirtualCutThrough);
  EXPECT_LT(b_vct, b_wormhole);
}

TEST(NetworkTest, VctWithTinyBuffersDegeneratesToWormhole) {
  Rig vct_small(Switching::kVirtualCutThrough, /*buffer_flits=*/2);
  Rig wormhole(Switching::kWormhole);
  // Packet (100 B = 25 flits) exceeds the 2-flit buffer: VCT must behave
  // like wormhole.
  EXPECT_EQ(vct_small.timed_transmit(0, 3, 92),
            wormhole.timed_transmit(0, 3, 92));
}

TEST(NetworkTest, StatsAccumulate) {
  Rig rig(Switching::kWormhole);
  rig.timed_transmit(0, 3, 92);
  rig.timed_transmit(0, 1, 92);
  EXPECT_EQ(rig.net->messages.value(), 2u);
  EXPECT_EQ(rig.net->bytes_delivered.value(), 184u);
  EXPECT_DOUBLE_EQ(rig.net->message_hops.mean(), 2.0);  // (3+1)/2
  EXPECT_GT(rig.net->message_latency_ticks.mean(), 0.0);
  EXPECT_GT(rig.net->mean_link_utilization(rig.sim.now()), 0.0);
}

TEST(NetworkTest, DatelineVcsBreakRingWormholeDeadlock) {
  // Regression: four simultaneous 2-hop wormhole messages around a 4-ring
  // (0->2, 1->3, 2->0, 3->1, all routed forward) form a cyclic channel
  // dependency.  With 2 virtual channels and the dateline scheme this must
  // complete; with 1 VC it would deadlock.
  sim::Simulator sim;
  machine::TopologyParams topo;
  topo.kind = TopologyKind::kRing;
  topo.dims = {4, 1};
  RouterParams router;
  router.switching = Switching::kWormhole;
  machine::LinkParams link;
  link.virtual_channels = 2;
  Network net(sim, topo, router, link);
  int done = 0;
  for (trace::NodeId src = 0; src < 4; ++src) {
    sim.spawn([](Network& n, sim::Simulator&, trace::NodeId s,
                 int* d) -> sim::Process {
      co_await n.transmit(s, (s + 2) % 4, 2048);
      ++*d;
    }(net, sim, src, &done));
  }
  sim.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(NetworkTest, DatelineVcsBreakTorusWormholeDeadlock) {
  // Same pattern within one row of a 4x4 torus.
  sim::Simulator sim;
  machine::TopologyParams topo;
  topo.kind = TopologyKind::kTorus2D;
  topo.dims = {4, 4};
  RouterParams router;
  router.switching = Switching::kWormhole;
  machine::LinkParams link;
  Network net(sim, topo, router, link);
  int done = 0;
  for (trace::NodeId src = 0; src < 4; ++src) {
    sim.spawn([](Network& n, trace::NodeId s, int* d) -> sim::Process {
      co_await n.transmit(s, (s + 2) % 4, 2048);  // within row 0
      ++*d;
    }(net, src, &done));
  }
  sim.run();
  EXPECT_EQ(done, 4);
}

TEST(NetworkTest, ShortestPathRoutingDeliversUnderLoad) {
  // Table-based routing end-to-end: random traffic on a mesh (acyclic turn
  // set not guaranteed, but VCT with large buffers releases links promptly)
  // must fully drain.
  sim::Simulator sim;
  machine::TopologyParams topo;
  topo.kind = TopologyKind::kMesh2D;
  topo.dims = {4, 4};
  RouterParams router;
  router.switching = Switching::kVirtualCutThrough;
  router.routing = RoutingAlgorithm::kShortestPath;
  router.input_buffer_flits = 1 << 20;
  machine::LinkParams link;
  Network net(sim, topo, router, link);
  int done = 0;
  sim::Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    const auto src = static_cast<trace::NodeId>(rng.next_below(16));
    auto dst = static_cast<trace::NodeId>(rng.next_below(16));
    if (dst == src) dst = static_cast<trace::NodeId>((dst + 5) % 16);
    sim.spawn([](Network& n, trace::NodeId a, trace::NodeId b,
                 int* d) -> sim::Process {
      co_await n.transmit(a, b, 777);
      ++*d;
    }(net, src, dst, &done));
  }
  sim.run();
  EXPECT_EQ(done, 60);
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(NetworkTest, FootprintGrowsWithNodeCount) {
  sim::Simulator sim;
  TopologyParams small;
  small.kind = TopologyKind::kMesh2D;
  small.dims = {2, 2};
  TopologyParams big = small;
  big.dims = {8, 8};
  Network a(sim, small, RouterParams{}, machine::LinkParams{});
  Network b(sim, big, RouterParams{}, machine::LinkParams{});
  EXPECT_GT(b.footprint_bytes(), a.footprint_bytes());
}

}  // namespace
}  // namespace merm::network
