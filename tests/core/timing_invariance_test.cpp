// Timing-invariance suite for the two-tier scheduler (DESIGN.md, "Two-tier
// time accounting"): every workload is run twice, once under the reference
// scheduler (MERM_REFERENCE_SCHED semantics: no local time cursors, no
// zero-delay inlining, no same-tick fast lane) and once with the fast paths
// on, and the simulated end times plus every registered statistic must be
// bit-identical.  Host-side quantities (kernel event counts, wall time) are
// deliberately excluded — making them differ is the whole point of the
// optimization.
//
// Also holds the coroutine-frame footprint regressions for
// Simulator::collect_finished(): multi-phase Workbench runs and repeated
// simulator spawns must not accumulate finished frames.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/workbench.hpp"
#include "gen/apps.hpp"
#include "gen/stochastic.hpp"
#include "machine/params.hpp"
#include "sim/simulator.hpp"

namespace merm {
namespace {

/// Everything a run is required to reproduce exactly, independent of how the
/// kernel schedules it: simulated outcome plus the full stat tables
/// (counter values and the CSV export, whose doubles are bit-identical when
/// accumulation order is preserved).
struct Fingerprint {
  bool completed = false;
  sim::Tick simulated_time = 0;
  std::uint64_t cpu_cycles = 0;
  std::uint64_t operations = 0;
  std::uint64_t messages = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::string csv;
};

/// Scoped scheduler-mode override; Simulator reads the mode at construction,
/// so the Workbench must be built inside the scope.
class SchedulerMode {
 public:
  explicit SchedulerMode(int mode) {
    sim::set_reference_scheduler_override(mode);
  }
  ~SchedulerMode() { sim::set_reference_scheduler_override(-1); }
  SchedulerMode(const SchedulerMode&) = delete;
  SchedulerMode& operator=(const SchedulerMode&) = delete;
};

using WorkloadFn = std::function<trace::Workload()>;

Fingerprint run_fingerprint(int mode, const machine::MachineParams& arch,
                            const WorkloadFn& make_workload) {
  SchedulerMode scope(mode);
  core::Workbench wb(arch);
  EXPECT_EQ(wb.simulator().fast_paths(), mode == 0);
  wb.register_all_stats();
  trace::Workload w = make_workload();
  const core::RunResult r = wb.run_detailed(w);
  Fingerprint f;
  f.completed = r.completed;
  f.simulated_time = r.simulated_time;
  f.cpu_cycles = r.simulated_cpu_cycles;
  f.operations = r.operations;
  f.messages = r.messages;
  f.counters = wb.stats().counter_values();
  std::ostringstream csv;
  wb.stats().write_csv(csv);
  f.csv = csv.str();
  return f;
}

void expect_invariant(const machine::MachineParams& arch,
                      const WorkloadFn& make_workload) {
  const Fingerprint ref = run_fingerprint(1, arch, make_workload);
  const Fingerprint fast = run_fingerprint(0, arch, make_workload);
  EXPECT_TRUE(ref.completed);
  EXPECT_EQ(fast.completed, ref.completed);
  EXPECT_EQ(fast.simulated_time, ref.simulated_time);
  EXPECT_EQ(fast.cpu_cycles, ref.cpu_cycles);
  EXPECT_EQ(fast.operations, ref.operations);
  EXPECT_EQ(fast.messages, ref.messages);
  EXPECT_EQ(fast.counters, ref.counters);
  EXPECT_EQ(fast.csv, ref.csv);
}

// Message-passing multicomputer: cursors active on every (single-CPU) node,
// flushed at each communication boundary.
TEST(TimingInvarianceTest, T805Matmul) {
  expect_invariant(machine::presets::t805_multicomputer(2, 2), [] {
    return gen::make_offline_workload(
        4, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
          gen::matmul_spmd(a, s, n, gen::MatmulParams{16});
        });
  });
}

// Cached single node: exercises the hit fast path, the miss walk (cursor
// flush -> bus transaction), and write-back traffic on two cache levels.
TEST(TimingInvarianceTest, PowerPc601ComputeKernel) {
  expect_invariant(machine::presets::powerpc601_node(), [] {
    return gen::make_offline_workload(
        1, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
          gen::compute_kernel(a, s, n, gen::ComputeKernelParams{4096, 4, 1});
        });
  });
}

// Stochastic all-to-all traffic on the generic RISC mesh: dense same-tick
// contention at routers and FifoResources.
TEST(TimingInvarianceTest, StochasticAllToAll) {
  expect_invariant(machine::presets::generic_risc(2, 2), [] {
    gen::StochasticDescription d;
    d.instructions_per_round = 300;
    d.rounds = 2;
    d.seed = 7;
    d.comm.pattern = gen::CommPattern::kAllToAll;
    return gen::make_stochastic_workload(d, 4);
  });
}

// Multi-CPU shared-memory node: cursors stay disabled (coherence snoops make
// every CPU an observer of its peers), so this pins down the queue/lane
// overhaul itself — heap layout, pooled callbacks, FifoResource awaiter.
TEST(TimingInvarianceTest, MultiCpuCoherentNode) {
  machine::MachineParams arch = machine::presets::powerpc601_node();
  arch.node.cpu_count = 4;
  expect_invariant(arch, [] {
    gen::StochasticDescription d;
    d.instructions_per_round = 2000;
    d.rounds = 2;
    d.seed = 3;
    d.comm.pattern = gen::CommPattern::kNone;
    d.memory.data_working_set = 8 * 1024;
    d.mix.store = 0.2;
    return gen::make_stochastic_workload(d, 1, 4);
  });
}

// PDES composes with the two-tier scheduler: a parallel run's results must
// not depend on whether the partition simulators use the fast paths or the
// reference schedule.  (Worker-count invariance itself is covered by
// tests/core/pdes_determinism_test.cpp; this pins the scheduler axis.)
TEST(TimingInvarianceTest, PdesRunIsSchedulerModeInvariant) {
  const auto run_pdes = [](int mode) {
    SchedulerMode scope(mode);
    core::Workbench wb(machine::presets::t805_multicomputer(2, 2));
    EXPECT_TRUE(wb.enable_pdes(2).active);
    wb.register_all_stats();
    trace::Workload w = gen::make_offline_workload(
        4, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
          gen::matmul_spmd(a, s, n, gen::MatmulParams{16});
        });
    const core::RunResult r = wb.run_detailed(w);
    EXPECT_TRUE(r.completed);
    std::ostringstream csv;
    wb.stats().write_csv(csv);
    return std::make_tuple(r.simulated_time, r.operations, r.messages,
                           csv.str());
  };
  EXPECT_EQ(run_pdes(1), run_pdes(0));
}

// Footprint regression: a multi-phase Workbench must not accumulate finished
// coroutine frames from completed phases (finish_run collects them).
TEST(TimingInvarianceTest, MultiPhaseRunsCollectFinishedFrames) {
  core::Workbench wb(machine::presets::t805_multicomputer(2, 1));
  for (int phase = 0; phase < 4; ++phase) {
    auto w = gen::make_offline_workload(
        2, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
          gen::stencil_spmd(a, s, n, gen::StencilParams{8, 2});
        });
    const auto r = wb.run_detailed(w);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(wb.simulator().owned_processes(), 0u)
        << "finished frames retained after phase " << phase;
  }
}

// Same property at the simulator level: collect_finished() frees exactly the
// finished processes and leaves live ones alone.
TEST(TimingInvarianceTest, CollectFinishedKeepsLiveProcesses) {
  sim::Simulator sim;
  sim.spawn([](sim::Simulator& s) -> sim::Process {
    co_await s.delay(10);
  }(sim));
  sim.spawn([](sim::Simulator& s) -> sim::Process {
    co_await s.delay(1000);
  }(sim));
  sim.run(100);
  EXPECT_EQ(sim.owned_processes(), 2u);
  sim.collect_finished();
  EXPECT_EQ(sim.owned_processes(), 1u);  // the t=1000 process is still live
  sim.run();
  sim.collect_finished();
  EXPECT_EQ(sim.owned_processes(), 0u);
}

}  // namespace
}  // namespace merm
