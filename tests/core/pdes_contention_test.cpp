// The contended parallel network's exact-match acceptance case: when every
// directed link carries at most one message stream, the PDES reservation
// ledger degenerates to the serial engine's store-and-forward FIFO — each
// packet departs at max(its ready time, the link's free time), which is
// exactly the order the serial contention events resolve in.  On such a
// workload the PDES run must match the serial engine *bit for bit* on the
// full registered-stat CSV (latency sums included: integer-tick doubles sum
// exactly, so accumulation order cannot leak), at every worker count and at
// every fixed partitioning.  General traffic (two streams sharing a link
// mid-window) is exempt — barrier-ordered reservations may interleave the
// streams differently than global event order — and that divergence is
// covered by pdes_determinism_test's aggregate-only serial comparison.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/workbench.hpp"
#include "gen/stochastic.hpp"
#include "machine/params.hpp"
#include "trace/stream.hpp"

namespace merm {
namespace {

using core::Workbench;

/// Pipeline traffic on a 4x1 line: node i streams `messages` multi-packet
/// sends to node i+1 while receiving the stream from node i-1.  XY routing
/// puts stream i->i+1 alone on directed link i->i+1, so no directed link
/// ever serves two streams.
trace::Workload pipeline_workload(std::uint32_t nodes, int messages,
                                  std::uint32_t bytes) {
  trace::Workload w;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    auto src = std::make_unique<trace::VectorSource>();
    for (int m = 0; m < messages; ++m) {
      // Async sends: the forward stream is the only traffic on each
      // directed link (no rendezvous handshake sharing the reverse path).
      if (n + 1 < nodes) src->push(trace::Operation::asend(bytes, n + 1, m));
      if (n > 0) src->push(trace::Operation::recv(n - 1, m));
    }
    w.sources.push_back(std::move(src));
  }
  return w;
}

struct Snapshot {
  bool completed = false;
  sim::Tick simulated_time = 0;
  std::uint64_t operations = 0;
  std::uint64_t messages = 0;
  std::string csv;
};

Snapshot run_once(unsigned sim_threads, std::uint32_t partitions,
                  std::uint32_t nodes, int messages, std::uint32_t bytes) {
  // Multi-packet messages (bytes > max_packet_bytes) so the per-packet
  // pipelining of store-and-forward is actually exercised, not just a
  // single reservation per message.
  const machine::MachineParams arch =
      machine::presets::t805_multicomputer(nodes, 1);
  Workbench wb(arch);
  if (sim_threads > 0) {
    const Workbench::PdesStatus st = wb.enable_pdes(sim_threads, partitions);
    EXPECT_TRUE(st.active) << st.note;
  }
  wb.register_all_stats();
  trace::Workload w = pipeline_workload(nodes, messages, bytes);
  const core::RunResult r = wb.run_task_level(w);
  Snapshot s;
  s.completed = r.completed;
  s.simulated_time = r.simulated_time;
  s.operations = r.operations;
  s.messages = r.messages;
  std::ostringstream csv;
  wb.stats().write_csv(csv);
  s.csv = csv.str();
  return s;
}

constexpr std::uint32_t kNodes = 4;
constexpr int kMessages = 6;
constexpr std::uint32_t kBytes = 4096;  // >> t805 max packet size

TEST(PdesContention, SingleStreamLinksMatchSerialEngineExactly) {
  const Snapshot serial = run_once(0, 0, kNodes, kMessages, kBytes);
  ASSERT_TRUE(serial.completed);
  ASSERT_GT(serial.messages, 0u);
  for (const std::uint32_t partitions : {1u, 2u, kNodes}) {
    for (const unsigned threads : {1u, 2u, 4u}) {
      SCOPED_TRACE("partitions=" + std::to_string(partitions) +
                   " sim_threads=" + std::to_string(threads));
      const Snapshot pdes =
          run_once(threads, partitions, kNodes, kMessages, kBytes);
      EXPECT_TRUE(pdes.completed);
      EXPECT_EQ(pdes.simulated_time, serial.simulated_time);
      EXPECT_EQ(pdes.operations, serial.operations);
      EXPECT_EQ(pdes.messages, serial.messages);
      EXPECT_EQ(pdes.csv, serial.csv);
    }
  }
}

/// The same pipeline with cross-partition hops forced through every window:
/// 2 partitions put the 1->2 stream across the barrier, so its packets are
/// reserved at barrier time — and must land on the identical ticks the
/// local (1-partition) and serial runs produce.
TEST(PdesContention, BarrierResolvedCrossTrafficKeepsSerialTiming) {
  const Snapshot local = run_once(4, 1, kNodes, kMessages, kBytes);
  const Snapshot cross = run_once(4, 2, kNodes, kMessages, kBytes);
  ASSERT_TRUE(local.completed);
  ASSERT_TRUE(cross.completed);
  EXPECT_EQ(cross.simulated_time, local.simulated_time);
  EXPECT_EQ(cross.csv, local.csv);
}

}  // namespace
}  // namespace merm
