// Workbench front-end tests: run results, slowdown accounting, progress
// sampling, and the architecture-comparison driver.
#include "core/workbench.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "gen/apps.hpp"
#include "gen/stochastic.hpp"
#include "gen/vsm_apps.hpp"
#include "trace/stream.hpp"

namespace merm::core {
namespace {

TEST(WorkbenchTest, DetailedRunReportsCompleteResult) {
  Workbench wb(machine::presets::t805_multicomputer(2, 1));
  auto w = gen::make_offline_workload(
      2, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
        gen::pingpong(a, s, n, gen::PingPongParams{4, 512});
      });
  const RunResult r = wb.run_detailed(w);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.machine_name, "t805");
  EXPECT_EQ(r.level, node::SimulationLevel::kDetailed);
  EXPECT_GT(r.simulated_time, 0u);
  EXPECT_GT(r.simulated_cpu_cycles, 0u);
  EXPECT_GT(r.events_processed, 0u);
  EXPECT_EQ(r.messages, 2u * 4u + 2u * 4u);  // data + acks
  EXPECT_GT(r.footprint_bytes, 0u);
  EXPECT_EQ(r.processors, 2u);
  EXPECT_GE(r.host_seconds, 0.0);
}

TEST(WorkbenchTest, TaskLevelRunUsesCommModel) {
  Workbench wb(machine::presets::t805_multicomputer(2, 2));
  gen::StochasticDescription d;
  d.rounds = 2;
  d.comm.pattern = gen::CommPattern::kRing;
  auto w = gen::make_stochastic_task_workload(d, 4);
  const RunResult r = wb.run_task_level(w);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.level, node::SimulationLevel::kTaskLevel);
  EXPECT_GT(r.messages, 0u);
  EXPECT_EQ(r.processors, 4u);
}

TEST(WorkbenchTest, TimeBoundedRunReportsIncomplete) {
  Workbench wb(machine::presets::t805_multicomputer(2, 1));
  auto w = gen::make_offline_workload(
      2, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
        gen::matmul_spmd(a, s, n, gen::MatmulParams{16});
      });
  const RunResult r = wb.run_detailed(w, /*until=*/sim::kTicksPerMicrosecond);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.simulated_time, sim::kTicksPerMicrosecond);
}

TEST(WorkbenchTest, SlowdownMetricIsFiniteAndPositive) {
  Workbench wb(machine::presets::powerpc601_node());
  auto w = gen::make_offline_workload(
      1, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
        gen::compute_kernel(a, s, n, gen::ComputeKernelParams{2048, 4, 1});
      });
  const RunResult r = wb.run_detailed(w);
  ASSERT_TRUE(r.completed);
  const double slowdown = r.slowdown_per_processor(143e6);  // paper's host
  EXPECT_GT(slowdown, 0.0);
  EXPECT_LT(slowdown, 1e9);
  EXPECT_GT(r.cycles_per_host_second(), 0.0);
}

TEST(WorkbenchTest, HostFrequencyEstimateIsPlausible) {
  const double hz = host_frequency_hz();
  EXPECT_GT(hz, 100e6);   // faster than 100 MHz
  EXPECT_LT(hz, 100e9);   // slower than 100 GHz
  EXPECT_DOUBLE_EQ(hz, host_frequency_hz());  // cached
}

TEST(WorkbenchTest, ProgressSamplerRecordsSeries) {
  Workbench wb(machine::presets::t805_multicomputer(2, 1));
  wb.enable_progress(100 * sim::kTicksPerMicrosecond);
  auto w = gen::make_offline_workload(
      2, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
        gen::pingpong(a, s, n, gen::PingPongParams{8, 4096});
      });
  const RunResult r = wb.run_detailed(w);
  ASSERT_TRUE(r.completed);
  EXPECT_GE(wb.progress_series().points().size(), 2u);
  // Samples are monotone in time and events.
  const auto& pts = wb.progress_series().points();
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].time, pts[i - 1].time);
    EXPECT_GE(pts[i].value, pts[i - 1].value);
  }
}

TEST(WorkbenchTest, ProgressEchoWritesLines) {
  Workbench wb(machine::presets::t805_multicomputer(2, 1));
  std::ostringstream echo;
  wb.enable_progress(500 * sim::kTicksPerMicrosecond, &echo);
  auto w = gen::make_offline_workload(
      2, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
        gen::pingpong(a, s, n, gen::PingPongParams{8, 4096});
      });
  wb.run_detailed(w);
  EXPECT_NE(echo.str().find("[progress]"), std::string::npos);
}

TEST(WorkbenchTest, RegisterAllStatsExposesModelMetrics) {
  Workbench wb(machine::presets::generic_risc(2, 1));
  wb.register_all_stats();
  EXPECT_GT(wb.stats().counter_values().size(), 5u);
}

TEST(WorkbenchTest, ResultPrintIsHumanReadable) {
  Workbench wb(machine::presets::t805_multicomputer(2, 1));
  auto w = gen::make_offline_workload(
      2, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
        gen::pingpong(a, s, n, gen::PingPongParams{2, 64});
      });
  const RunResult r = wb.run_detailed(w);
  std::ostringstream os;
  r.print(os);
  EXPECT_NE(os.str().find("t805"), std::string::npos);
  EXPECT_NE(os.str().find("slowdown"), std::string::npos);
}

TEST(WorkbenchTest, AttachedSamplerRecordsDuringRun) {
  Workbench wb(machine::presets::t805_multicomputer(2, 1));
  wb.register_all_stats();
  obs::CounterSampler sampler(wb.stats(), {"t805.net.messages"});
  wb.enable_progress(100 * sim::kTicksPerMicrosecond);
  wb.attach_sampler(&sampler);
  auto w = gen::make_offline_workload(
      2, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
        gen::pingpong(a, s, n, gen::PingPongParams{8, 4096});
      });
  const RunResult r = wb.run_detailed(w);
  ASSERT_TRUE(r.completed);
  EXPECT_GE(sampler.samples(), 2u);
}

TEST(WorkbenchTest, RunDetailedSharedRoutesThroughVsm) {
  machine::MachineParams arch = machine::presets::generic_risc(4, 1);
  arch.topology.kind = machine::TopologyKind::kRing;
  arch.topology.dims = {4, 1};
  Workbench wb(arch);
  auto w = gen::make_offline_workload(
      4, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
        gen::vsm_stencil_spmd(a, s, n, gen::VsmStencilParams{32, 2});
      });
  const RunResult r = wb.run_detailed_shared(w);
  EXPECT_TRUE(r.completed);
  ASSERT_NE(wb.vsm(), nullptr);
  EXPECT_GT(wb.vsm()->total_faults(), 0u);
  EXPECT_EQ(wb.vsm()->single_writer_violations(), 0u);
}

TEST(WorkbenchTest, CompareRunsTwoArchitectures) {
  // Architecture X vs Y (Fig. 1): same stencil on a store-and-forward T805
  // mesh and on a wormhole generic-RISC torus.  The modern machine must be
  // dramatically faster in simulated time.
  const auto workload_for = [](const machine::MachineParams& params) {
    return gen::make_offline_workload(
        params.node_count(),
        [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
          gen::stencil_spmd(a, s, n, gen::StencilParams{16, 2});
        });
  };
  const auto cmp = Workbench::compare(machine::presets::t805_multicomputer(2, 2),
                                      machine::presets::generic_risc(2, 2),
                                      workload_for);
  ASSERT_TRUE(cmp.x.completed);
  ASSERT_TRUE(cmp.y.completed);
  EXPECT_LT(cmp.y.simulated_time, cmp.x.simulated_time);
  EXPECT_LT(cmp.speedup_x_over_y(), 0.5);  // y at least 2x faster
}

/// Node 1 waits on a tag node 0 never sends: the classic silent hang.
trace::Workload mismatched_tag_workload() {
  trace::Workload w;
  auto sender = std::make_unique<trace::VectorSource>();
  sender->push(trace::Operation::asend(64, 1, /*tag=*/7));
  auto receiver = std::make_unique<trace::VectorSource>();
  receiver->push(trace::Operation::recv(0, /*tag=*/99));
  w.sources.push_back(std::move(sender));
  w.sources.push_back(std::move(receiver));
  return w;
}

TEST(WorkbenchTest, HungRunReportsDiagnosticInsteadOfCompleting) {
  Workbench wb(machine::presets::t805_multicomputer(2, 1));
  trace::Workload w = mismatched_tag_workload();
  const RunResult r = wb.run_detailed(w);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.hang_diagnostic.find("simulation hang"), std::string::npos)
      << r.hang_diagnostic;
  EXPECT_NE(r.hang_diagnostic.find("recv from 0 tag=99"), std::string::npos)
      << r.hang_diagnostic;
}

TEST(WorkbenchTest, ThrowOnHangRaisesHangErrorWithTheDiagnostic) {
  Workbench wb(machine::presets::t805_multicomputer(2, 1));
  wb.set_throw_on_hang(true);
  trace::Workload w = mismatched_tag_workload();
  try {
    (void)wb.run_detailed(w);
    FAIL() << "expected HangError";
  } catch (const HangError& e) {
    EXPECT_NE(std::string(e.what()).find("recv from 0 tag=99"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace merm::core
