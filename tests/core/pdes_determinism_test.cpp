// The PDES determinism battery (the tentpole's acceptance test): at any
// FIXED partitioning, one simulation run parallelized over 2, 4 and 8 host
// worker threads must be *bit-identical* to the same run on 1 worker —
// simulated end time, every registered statistic (CSV bytes included:
// doubles are only bit-equal when accumulation order is preserved), kernel
// aggregates, and the full execution trace in both Chrome-JSON and binary
// form.  The matrix covers partitions in {1, auto-resolved, nodes} x
// task-level and detailed workloads x fault injection on/off x traced and
// untraced runs.  (Different partitionings are each valid contended-model
// results but need not match each other: concurrent streams on a shared
// link may interleave differently — DESIGN.md §8.)
//
// The serial (legacy) engine resolves link contention in global event
// order while PDES uses barrier-ordered reservations, so general traffic
// is compared only on order-insensitive aggregates; the exact serial-match
// case (single stream per directed link) lives in pdes_contention_test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/workbench.hpp"
#include "fault/fault.hpp"
#include "gen/stochastic.hpp"
#include "machine/params.hpp"
#include "obs/binary_trace.hpp"
#include "obs/chrome_trace.hpp"

namespace merm {
namespace {

struct Config {
  node::SimulationLevel level = node::SimulationLevel::kTaskLevel;
  bool faults = false;
  bool traced = false;
};

/// Everything a PDES run must reproduce exactly at any worker count.
struct Fingerprint {
  bool completed = false;
  bool pdes_active = false;
  sim::Tick simulated_time = 0;
  std::uint64_t cpu_cycles = 0;
  std::uint64_t operations = 0;
  std::uint64_t messages = 0;
  std::uint64_t events_processed = 0;
  std::size_t peak_queue_depth = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::string csv;
  std::string chrome_trace;
  std::string binary_trace;
  std::string hang;
};

machine::MachineParams arch_for(const Config& cfg) {
  machine::MachineParams arch = machine::presets::t805_multicomputer(4, 4);
  if (cfg.faults) {
    // A transient link outage plus probabilistic drops: every delivery may
    // reroute, retry or time out, yet high retry budgets keep the workload
    // completing so the fingerprint covers the full tolerance machinery.
    arch.fault = fault::parse_spec(
        "link=0-1@100000:900000,drop=0.02,retries=8,seed=7");
  }
  return arch;
}

trace::Workload workload_for(const Config& cfg, std::uint32_t nodes) {
  gen::StochasticDescription d;
  d.rounds = 2;
  d.seed = 11;
  return cfg.level == node::SimulationLevel::kTaskLevel
             ? gen::make_stochastic_task_workload(d, nodes)
             : gen::make_stochastic_workload(d, nodes);
}

Fingerprint run_once(unsigned sim_threads, const Config& cfg,
                     std::uint32_t partitions) {
  const machine::MachineParams arch = arch_for(cfg);
  core::Workbench wb(arch);
  const core::Workbench::PdesStatus st =
      wb.enable_pdes(sim_threads, partitions);
  EXPECT_TRUE(st.active) << st.note;
  EXPECT_EQ(st.partitions, partitions);
  wb.register_all_stats();
  if (cfg.traced) wb.enable_tracing();
  trace::Workload w = workload_for(cfg, arch.node_count());
  const core::RunResult r = cfg.level == node::SimulationLevel::kTaskLevel
                                ? wb.run_task_level(w)
                                : wb.run_detailed(w);
  Fingerprint f;
  f.completed = r.completed;
  f.pdes_active = wb.pdes_active();
  f.simulated_time = r.simulated_time;
  f.cpu_cycles = r.simulated_cpu_cycles;
  f.operations = r.operations;
  f.messages = r.messages;
  f.events_processed = r.events_processed;
  f.peak_queue_depth = r.peak_queue_depth;
  f.counters = wb.stats().counter_values();
  f.hang = r.hang_diagnostic;
  std::ostringstream csv;
  wb.stats().write_csv(csv);
  f.csv = csv.str();
  if (cfg.traced && r.trace != nullptr) {
    std::ostringstream chrome;
    obs::write_chrome_trace(chrome, *r.trace);  // no host process: pure sim
    f.chrome_trace = chrome.str();
    std::ostringstream binary;
    obs::write_binary_trace(binary, *r.trace);
    f.binary_trace = binary.str();
  }
  return f;
}

void expect_worker_count_invariant(const Config& cfg) {
  // Partitions must be pinned for cross-worker-count comparison: the auto
  // default ties the partition count to the worker count.  The matrix
  // covers the single-partition extreme (unbounded windows, everything
  // local), the auto value a 4-worker run would resolve to (coarse
  // sub-grid blocks), and one-partition-per-node (the legacy fine map).
  const machine::MachineParams arch = arch_for(cfg);
  const std::uint32_t auto_at_4 = std::min<std::uint32_t>(4, arch.node_count());
  for (const std::uint32_t partitions :
       {1u, auto_at_4, arch.node_count()}) {
    SCOPED_TRACE("partitions=" + std::to_string(partitions));
    const Fingerprint base = run_once(1, cfg, partitions);
    EXPECT_TRUE(base.completed);
    EXPECT_TRUE(base.pdes_active);
    EXPECT_GT(base.messages, 0u);
    for (const unsigned threads : {2u, 4u, 8u}) {
      const Fingerprint f = run_once(threads, cfg, partitions);
      SCOPED_TRACE("sim_threads=" + std::to_string(threads));
      EXPECT_EQ(f.completed, base.completed);
      EXPECT_EQ(f.simulated_time, base.simulated_time);
      EXPECT_EQ(f.cpu_cycles, base.cpu_cycles);
      EXPECT_EQ(f.operations, base.operations);
      EXPECT_EQ(f.messages, base.messages);
      EXPECT_EQ(f.events_processed, base.events_processed);
      EXPECT_EQ(f.peak_queue_depth, base.peak_queue_depth);
      EXPECT_EQ(f.counters, base.counters);
      EXPECT_EQ(f.csv, base.csv);
      EXPECT_EQ(f.chrome_trace, base.chrome_trace);
      EXPECT_EQ(f.binary_trace, base.binary_trace);
      EXPECT_EQ(f.hang, base.hang);
    }
  }
}

TEST(PdesDeterminism, TaskLevel) {
  expect_worker_count_invariant({node::SimulationLevel::kTaskLevel});
}

TEST(PdesDeterminism, TaskLevelTraced) {
  expect_worker_count_invariant(
      {node::SimulationLevel::kTaskLevel, false, true});
}

TEST(PdesDeterminism, TaskLevelWithFaults) {
  expect_worker_count_invariant(
      {node::SimulationLevel::kTaskLevel, true, false});
}

TEST(PdesDeterminism, TaskLevelWithFaultsTraced) {
  expect_worker_count_invariant(
      {node::SimulationLevel::kTaskLevel, true, true});
}

TEST(PdesDeterminism, Detailed) {
  expect_worker_count_invariant({node::SimulationLevel::kDetailed});
}

TEST(PdesDeterminism, DetailedTraced) {
  expect_worker_count_invariant(
      {node::SimulationLevel::kDetailed, false, true});
}

TEST(PdesDeterminism, DetailedWithFaults) {
  expect_worker_count_invariant(
      {node::SimulationLevel::kDetailed, true, false});
}

TEST(PdesDeterminism, DetailedWithFaultsTraced) {
  expect_worker_count_invariant(
      {node::SimulationLevel::kDetailed, true, true});
}

/// Legacy-serial vs PDES: different network models (per-hop contention vs
/// zero-load latency), so only model-order-insensitive aggregates must
/// match — the workload's operation count and the message census.
TEST(PdesDeterminism, SerialAndPdesAgreeOnModelInsensitiveAggregates) {
  const Config cfg{node::SimulationLevel::kTaskLevel};
  const machine::MachineParams arch = arch_for(cfg);

  core::Workbench serial(arch);
  trace::Workload ws = workload_for(cfg, arch.node_count());
  const core::RunResult rs = serial.run_task_level(ws);

  core::Workbench pdes(arch);
  ASSERT_TRUE(pdes.enable_pdes(1).active);
  trace::Workload wp = workload_for(cfg, arch.node_count());
  const core::RunResult rp = pdes.run_task_level(wp);

  ASSERT_TRUE(rs.completed);
  ASSERT_TRUE(rp.completed);
  EXPECT_EQ(rp.operations, rs.operations);
  EXPECT_EQ(rp.messages, rs.messages);
  EXPECT_EQ(rp.processors, rs.processors);
}

/// Repeating the identical parallel run in-process must also be
/// bit-identical (no leaked state between Workbench instances).
TEST(PdesDeterminism, RepeatedRunsAreBitIdentical) {
  const Config cfg{node::SimulationLevel::kTaskLevel, true, true};
  const Fingerprint a = run_once(4, cfg, 4);
  const Fingerprint b = run_once(4, cfg, 4);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.chrome_trace, b.chrome_trace);
  EXPECT_EQ(a.simulated_time, b.simulated_time);
}

/// partitions=0 (auto) resolves to min(sim_threads, nodes) contiguous
/// blocks and reports the grid mapping in both PdesStatus and RunResult.
TEST(PdesDeterminism, AutoPartitionsFollowWorkerCountAndReportMapping) {
  const Config cfg{node::SimulationLevel::kTaskLevel};
  const machine::MachineParams arch = arch_for(cfg);
  core::Workbench wb(arch);
  const core::Workbench::PdesStatus st = wb.enable_pdes(4);  // auto
  ASSERT_TRUE(st.active) << st.note;
  EXPECT_EQ(st.partitions, 4u);
  EXPECT_EQ(st.mapping, "grid:2x2");  // 4x4 mesh tiled into 2x2 blocks
  trace::Workload w = workload_for(cfg, arch.node_count());
  const core::RunResult r = wb.run_task_level(w);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.pdes_active);
  EXPECT_EQ(r.pdes_partitions, 4u);
  EXPECT_EQ(r.pdes_mapping, "grid:2x2");
  EXPECT_GT(r.pdes_windows, 0u);
}

/// Coarser partitionings widen the window (lookahead scales with the
/// minimum cross-partition hop distance) so the same run needs no more —
/// and with a single partition, dramatically fewer — barriers.
TEST(PdesDeterminism, CoarserPartitionsNeedNoMoreWindows) {
  const Config cfg{node::SimulationLevel::kTaskLevel};
  const machine::MachineParams arch = arch_for(cfg);
  std::uint64_t windows_fine = 0;
  std::uint64_t windows_single = 0;
  for (const std::uint32_t partitions : {arch.node_count(), 1u}) {
    core::Workbench wb(arch);
    ASSERT_TRUE(wb.enable_pdes(2, partitions).active);
    trace::Workload w = workload_for(cfg, arch.node_count());
    const core::RunResult r = wb.run_task_level(w);
    ASSERT_TRUE(r.completed);
    (partitions == 1 ? windows_single : windows_fine) = r.pdes_windows;
  }
  EXPECT_LT(windows_single, windows_fine);
}

}  // namespace
}  // namespace merm
