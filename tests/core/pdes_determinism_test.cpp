// The PDES determinism battery (the tentpole's acceptance test): one
// simulation run parallelized over 2, 4 and 8 host worker threads must be
// *bit-identical* to the same run on 1 worker — simulated end time, every
// registered statistic (CSV bytes included: doubles are only bit-equal when
// accumulation order is preserved), kernel aggregates, and the full
// execution trace in both Chrome-JSON and binary form.  The matrix covers
// task-level and detailed workloads, fault injection on and off, and traced
// and untraced runs.
//
// The serial (legacy) engine is a different network model — zero-load
// latency vs per-hop contention — so it is compared only on order- and
// model-insensitive aggregates, not bit-for-bit (DESIGN.md "Conservative
// PDES").
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/workbench.hpp"
#include "fault/fault.hpp"
#include "gen/stochastic.hpp"
#include "machine/params.hpp"
#include "obs/binary_trace.hpp"
#include "obs/chrome_trace.hpp"

namespace merm {
namespace {

struct Config {
  node::SimulationLevel level = node::SimulationLevel::kTaskLevel;
  bool faults = false;
  bool traced = false;
};

/// Everything a PDES run must reproduce exactly at any worker count.
struct Fingerprint {
  bool completed = false;
  bool pdes_active = false;
  sim::Tick simulated_time = 0;
  std::uint64_t cpu_cycles = 0;
  std::uint64_t operations = 0;
  std::uint64_t messages = 0;
  std::uint64_t events_processed = 0;
  std::size_t peak_queue_depth = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::string csv;
  std::string chrome_trace;
  std::string binary_trace;
  std::string hang;
};

machine::MachineParams arch_for(const Config& cfg) {
  machine::MachineParams arch = machine::presets::t805_multicomputer(4, 4);
  if (cfg.faults) {
    // A transient link outage plus probabilistic drops: every delivery may
    // reroute, retry or time out, yet high retry budgets keep the workload
    // completing so the fingerprint covers the full tolerance machinery.
    arch.fault = fault::parse_spec(
        "link=0-1@100000:900000,drop=0.02,retries=8,seed=7");
  }
  return arch;
}

trace::Workload workload_for(const Config& cfg, std::uint32_t nodes) {
  gen::StochasticDescription d;
  d.rounds = 2;
  d.seed = 11;
  return cfg.level == node::SimulationLevel::kTaskLevel
             ? gen::make_stochastic_task_workload(d, nodes)
             : gen::make_stochastic_workload(d, nodes);
}

Fingerprint run_once(unsigned sim_threads, const Config& cfg) {
  const machine::MachineParams arch = arch_for(cfg);
  core::Workbench wb(arch);
  const core::Workbench::PdesStatus st = wb.enable_pdes(sim_threads);
  EXPECT_TRUE(st.active) << st.note;
  wb.register_all_stats();
  if (cfg.traced) wb.enable_tracing();
  trace::Workload w = workload_for(cfg, arch.node_count());
  const core::RunResult r = cfg.level == node::SimulationLevel::kTaskLevel
                                ? wb.run_task_level(w)
                                : wb.run_detailed(w);
  Fingerprint f;
  f.completed = r.completed;
  f.pdes_active = wb.pdes_active();
  f.simulated_time = r.simulated_time;
  f.cpu_cycles = r.simulated_cpu_cycles;
  f.operations = r.operations;
  f.messages = r.messages;
  f.events_processed = r.events_processed;
  f.peak_queue_depth = r.peak_queue_depth;
  f.counters = wb.stats().counter_values();
  f.hang = r.hang_diagnostic;
  std::ostringstream csv;
  wb.stats().write_csv(csv);
  f.csv = csv.str();
  if (cfg.traced && r.trace != nullptr) {
    std::ostringstream chrome;
    obs::write_chrome_trace(chrome, *r.trace);  // no host process: pure sim
    f.chrome_trace = chrome.str();
    std::ostringstream binary;
    obs::write_binary_trace(binary, *r.trace);
    f.binary_trace = binary.str();
  }
  return f;
}

void expect_worker_count_invariant(const Config& cfg) {
  const Fingerprint base = run_once(1, cfg);
  EXPECT_TRUE(base.completed);
  EXPECT_TRUE(base.pdes_active);
  EXPECT_GT(base.messages, 0u);
  for (const unsigned threads : {2u, 4u, 8u}) {
    const Fingerprint f = run_once(threads, cfg);
    SCOPED_TRACE("sim_threads=" + std::to_string(threads));
    EXPECT_EQ(f.completed, base.completed);
    EXPECT_EQ(f.simulated_time, base.simulated_time);
    EXPECT_EQ(f.cpu_cycles, base.cpu_cycles);
    EXPECT_EQ(f.operations, base.operations);
    EXPECT_EQ(f.messages, base.messages);
    EXPECT_EQ(f.events_processed, base.events_processed);
    EXPECT_EQ(f.peak_queue_depth, base.peak_queue_depth);
    EXPECT_EQ(f.counters, base.counters);
    EXPECT_EQ(f.csv, base.csv);
    EXPECT_EQ(f.chrome_trace, base.chrome_trace);
    EXPECT_EQ(f.binary_trace, base.binary_trace);
    EXPECT_EQ(f.hang, base.hang);
  }
}

TEST(PdesDeterminism, TaskLevel) {
  expect_worker_count_invariant({node::SimulationLevel::kTaskLevel});
}

TEST(PdesDeterminism, TaskLevelTraced) {
  expect_worker_count_invariant(
      {node::SimulationLevel::kTaskLevel, false, true});
}

TEST(PdesDeterminism, TaskLevelWithFaults) {
  expect_worker_count_invariant(
      {node::SimulationLevel::kTaskLevel, true, false});
}

TEST(PdesDeterminism, TaskLevelWithFaultsTraced) {
  expect_worker_count_invariant(
      {node::SimulationLevel::kTaskLevel, true, true});
}

TEST(PdesDeterminism, Detailed) {
  expect_worker_count_invariant({node::SimulationLevel::kDetailed});
}

TEST(PdesDeterminism, DetailedTraced) {
  expect_worker_count_invariant(
      {node::SimulationLevel::kDetailed, false, true});
}

TEST(PdesDeterminism, DetailedWithFaults) {
  expect_worker_count_invariant(
      {node::SimulationLevel::kDetailed, true, false});
}

TEST(PdesDeterminism, DetailedWithFaultsTraced) {
  expect_worker_count_invariant(
      {node::SimulationLevel::kDetailed, true, true});
}

/// Legacy-serial vs PDES: different network models (per-hop contention vs
/// zero-load latency), so only model-order-insensitive aggregates must
/// match — the workload's operation count and the message census.
TEST(PdesDeterminism, SerialAndPdesAgreeOnModelInsensitiveAggregates) {
  const Config cfg{node::SimulationLevel::kTaskLevel};
  const machine::MachineParams arch = arch_for(cfg);

  core::Workbench serial(arch);
  trace::Workload ws = workload_for(cfg, arch.node_count());
  const core::RunResult rs = serial.run_task_level(ws);

  core::Workbench pdes(arch);
  ASSERT_TRUE(pdes.enable_pdes(1).active);
  trace::Workload wp = workload_for(cfg, arch.node_count());
  const core::RunResult rp = pdes.run_task_level(wp);

  ASSERT_TRUE(rs.completed);
  ASSERT_TRUE(rp.completed);
  EXPECT_EQ(rp.operations, rs.operations);
  EXPECT_EQ(rp.messages, rs.messages);
  EXPECT_EQ(rp.processors, rs.processors);
}

/// Repeating the identical parallel run in-process must also be
/// bit-identical (no leaked state between Workbench instances).
TEST(PdesDeterminism, RepeatedRunsAreBitIdentical) {
  const Config cfg{node::SimulationLevel::kTaskLevel, true, true};
  const Fingerprint a = run_once(4, cfg);
  const Fingerprint b = run_once(4, cfg);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.chrome_trace, b.chrome_trace);
  EXPECT_EQ(a.simulated_time, b.simulated_time);
}

}  // namespace
}  // namespace merm
