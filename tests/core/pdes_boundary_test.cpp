// Partition-boundary torture suite for the conservative PDES path: the
// configurations the engine must *refuse* (serial fallback or logic_error),
// and the behaviours at the edges it does accept — deliberate deadlocks
// whose diagnostic must match the serial engine's, retry exhaustion whose
// structured error must match, and NIC retry timers that straddle window
// boundaries.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/workbench.hpp"
#include "fault/fault.hpp"
#include "gen/stochastic.hpp"
#include "machine/params.hpp"
#include "node/comm_node.hpp"
#include "trace/stream.hpp"

namespace merm {
namespace {

using core::Workbench;

// ---------------------------------------------------------------- fallbacks

TEST(PdesBoundary, WormholeSwitchingFallsBackToSerial) {
  Workbench wb(machine::presets::generic_risc(2, 2));  // wormhole torus
  const Workbench::PdesStatus st = wb.enable_pdes(4);
  EXPECT_FALSE(st.active);
  EXPECT_NE(st.note.find("wormhole"), std::string::npos) << st.note;
  EXPECT_FALSE(wb.pdes_active());
  // The fallback workbench still runs fine, serially.
  gen::StochasticDescription d;
  d.rounds = 1;
  trace::Workload w = gen::make_stochastic_task_workload(d, 4);
  EXPECT_TRUE(wb.run_task_level(w).completed);
}

TEST(PdesBoundary, SingleNodeFallsBackToSerial) {
  Workbench wb(machine::presets::powerpc601_node());
  const Workbench::PdesStatus st = wb.enable_pdes(4);
  EXPECT_FALSE(st.active);
  EXPECT_NE(st.note.find("fewer than two nodes"), std::string::npos);
}

TEST(PdesBoundary, ZeroSimThreadsMeansSerial) {
  Workbench wb(machine::presets::t805_multicomputer(2, 2));
  EXPECT_FALSE(wb.enable_pdes(0).active);
  EXPECT_FALSE(wb.pdes_active());
}

TEST(PdesBoundary, ZeroLatencyLinksAreRejectedAndSafelySerialized) {
  machine::MachineParams arch = machine::presets::t805_multicomputer(2, 2);
  // No routing delay, no propagation, effectively infinite bandwidth: the
  // minimum single-hop traversal is 0 ticks and there is no lookahead
  // window to exploit.
  arch.router.routing_decision_cycles = 0;
  arch.link.propagation_delay = 0;
  arch.link.bandwidth_bytes_per_s = 1e30;
  Workbench wb(arch);
  const Workbench::PdesStatus st = wb.enable_pdes(4);
  EXPECT_FALSE(st.active);
  EXPECT_NE(st.note.find("zero-latency"), std::string::npos) << st.note;
  gen::StochasticDescription d;
  d.rounds = 1;
  trace::Workload w = gen::make_stochastic_task_workload(d, 4);
  EXPECT_TRUE(wb.run_task_level(w).completed);  // serial engine still works
}

TEST(PdesBoundary, ProgressSamplingForcesSerial) {
  Workbench wb(machine::presets::t805_multicomputer(2, 2));
  wb.enable_progress(sim::kTicksPerMicrosecond);
  const Workbench::PdesStatus st = wb.enable_pdes(4);
  EXPECT_FALSE(st.active);
  EXPECT_NE(st.note.find("progress"), std::string::npos) << st.note;
}

// ------------------------------------------------- ordering (logic errors)

TEST(PdesBoundary, EnablingAfterTracingThrows) {
  Workbench wb(machine::presets::t805_multicomputer(2, 2));
  wb.enable_tracing();
  EXPECT_THROW(wb.enable_pdes(2), std::logic_error);
}

TEST(PdesBoundary, EnablingAfterStatsRegistrationThrows) {
  Workbench wb(machine::presets::t805_multicomputer(2, 2));
  wb.register_all_stats();
  EXPECT_THROW(wb.enable_pdes(2), std::logic_error);
}

TEST(PdesBoundary, EnablingAfterVsmThrows) {
  Workbench wb(machine::presets::t805_multicomputer(2, 2));
  wb.enable_vsm();
  EXPECT_THROW(wb.enable_pdes(2), std::logic_error);
}

TEST(PdesBoundary, EnablingAfterARunThrows) {
  Workbench wb(machine::presets::t805_multicomputer(2, 2));
  gen::StochasticDescription d;
  d.rounds = 1;
  trace::Workload w = gen::make_stochastic_task_workload(d, 4);
  ASSERT_TRUE(wb.run_task_level(w).completed);
  EXPECT_THROW(wb.enable_pdes(2), std::logic_error);
}

TEST(PdesBoundary, VsmUnderPdesThrows) {
  Workbench wb(machine::presets::t805_multicomputer(2, 2));
  ASSERT_TRUE(wb.enable_pdes(2).active);
  EXPECT_THROW(wb.enable_vsm(), std::logic_error);
}

TEST(PdesBoundary, ProgressUnderPdesThrows) {
  Workbench wb(machine::presets::t805_multicomputer(2, 2));
  ASSERT_TRUE(wb.enable_pdes(2).active);
  EXPECT_THROW(wb.enable_progress(sim::kTicksPerMicrosecond),
               std::logic_error);
}

TEST(PdesBoundary, EnablingTwiceReportsExistingEngine) {
  Workbench wb(machine::presets::t805_multicomputer(2, 2));
  ASSERT_TRUE(wb.enable_pdes(2).active);
  const Workbench::PdesStatus st = wb.enable_pdes(8);
  EXPECT_TRUE(st.active);
  EXPECT_EQ(st.workers, 2u);  // first call wins
  EXPECT_NE(st.note.find("already enabled"), std::string::npos);
}

// --------------------------------------------------------------- deadlocks

/// Node 1 waits on a tag node 0 never sends — the canonical silent hang,
/// here stretched across a partition boundary.
trace::Workload mismatched_tag_workload() {
  trace::Workload w;
  auto sender = std::make_unique<trace::VectorSource>();
  sender->push(trace::Operation::asend(64, 1, /*tag=*/7));
  auto receiver = std::make_unique<trace::VectorSource>();
  receiver->push(trace::Operation::recv(0, /*tag=*/99));
  w.sources.push_back(std::move(sender));
  w.sources.push_back(std::move(receiver));
  return w;
}

std::string hang_text(unsigned sim_threads) {
  Workbench wb(machine::presets::t805_multicomputer(2, 1));
  if (sim_threads > 0) {
    // Partitions pinned (one per node) so the comparison across worker
    // counts runs one fixed partitioning.
    const Workbench::PdesStatus st = wb.enable_pdes(sim_threads, 2);
    EXPECT_TRUE(st.active) << st.note;
  }
  trace::Workload w = mismatched_tag_workload();
  const core::RunResult r = wb.run_detailed(w);
  EXPECT_FALSE(r.completed);
  return r.hang_diagnostic;
}

TEST(PdesBoundary, DeadlockDiagnosticIsWorkerCountInvariant) {
  const std::string serial = hang_text(0);
  const std::string pdes1 = hang_text(1);
  const std::string pdes2 = hang_text(2);
  EXPECT_NE(pdes1.find("recv from 0 tag=99"), std::string::npos) << pdes1;
  // PDES diagnostics are identical at any worker count.
  EXPECT_EQ(pdes1, pdes2);
  // And name exactly the same blocked operation the serial engine names.
  EXPECT_NE(serial.find("recv from 0 tag=99"), std::string::npos) << serial;
}

TEST(PdesBoundary, ThrowOnHangCarriesTheDiagnosticUnderPdes) {
  Workbench wb(machine::presets::t805_multicomputer(2, 1));
  ASSERT_TRUE(wb.enable_pdes(2).active);
  wb.set_throw_on_hang(true);
  trace::Workload w = mismatched_tag_workload();
  try {
    (void)wb.run_detailed(w);
    FAIL() << "expected HangError";
  } catch (const core::HangError& e) {
    EXPECT_NE(std::string(e.what()).find("recv from 0 tag=99"),
              std::string::npos)
        << e.what();
  }
}

// --------------------------------------------------------- retry machinery

/// drop=1.0: every data message is lost, the sync send exhausts its retries
/// and must surface the same structured error on every engine.
std::string retry_exhaustion_what(unsigned sim_threads) {
  machine::MachineParams arch = machine::presets::t805_multicomputer(2, 1);
  arch.fault = fault::parse_spec("drop=1.0,retries=2,seed=3");
  Workbench wb(arch);
  if (sim_threads > 0) {
    // Pinned partitioning: the error text is compared across worker counts.
    EXPECT_TRUE(wb.enable_pdes(sim_threads, 2).active);
  }
  trace::Workload w;
  auto sender = std::make_unique<trace::VectorSource>();
  sender->push(trace::Operation::send(64, 1, /*tag=*/5));
  auto receiver = std::make_unique<trace::VectorSource>();
  receiver->push(trace::Operation::recv(0, /*tag=*/5));
  w.sources.push_back(std::move(sender));
  w.sources.push_back(std::move(receiver));
  try {
    (void)wb.run_detailed(w);
    ADD_FAILURE() << "expected RetryExhaustedError";
    return {};
  } catch (const node::RetryExhaustedError& e) {
    return e.what();
  }
}

TEST(PdesBoundary, RetryExhaustionMatchesSerialEngine) {
  const std::string serial = retry_exhaustion_what(0);
  const std::string pdes1 = retry_exhaustion_what(1);
  const std::string pdes4 = retry_exhaustion_what(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, pdes1);
  EXPECT_EQ(pdes1, pdes4);
}

/// Retry timers straddling window boundaries: a lossy channel forces the
/// asend path through timeouts and backoffs that are longer than the
/// lookahead window, so the retransmit timer on the source partition races
/// the (delayed) confirm from the destination.  The outcome must still be
/// worker-count invariant.
TEST(PdesBoundary, RetryTimersStraddlingWindowsStayDeterministic) {
  machine::MachineParams arch = machine::presets::t805_multicomputer(2, 2);
  arch.fault = fault::parse_spec("drop=0.3,retries=8,seed=11");
  std::vector<std::string> csvs;
  for (const unsigned threads : {1u, 2u, 4u}) {
    Workbench wb(arch);
    // One partition per node (pinned): retransmit timers then straddle the
    // narrowest possible windows while worker count varies.
    ASSERT_TRUE(wb.enable_pdes(threads, 4).active);
    wb.register_all_stats();
    gen::StochasticDescription d;
    d.rounds = 2;
    d.seed = 5;
    trace::Workload w = gen::make_stochastic_task_workload(d, 4);
    const core::RunResult r = wb.run_task_level(w);
    EXPECT_TRUE(r.completed);
    std::ostringstream csv;
    wb.stats().write_csv(csv);
    csvs.push_back(csv.str());
  }
  EXPECT_EQ(csvs[0], csvs[1]);
  EXPECT_EQ(csvs[0], csvs[2]);
}

}  // namespace
}  // namespace merm
