// Model validation against closed-form expectations (the role the paper
// delegates to its companion tech report's validation chapter): end-to-end
// simulated timings must match hand-derived formulas built from the same
// machine parameters.
#include <gtest/gtest.h>

#include "core/workbench.hpp"
#include "gen/apps.hpp"
#include "gen/collectives.hpp"
#include "node/machine.hpp"
#include "sim/simulator.hpp"

namespace merm {
namespace {

// A machine with round, hand-checkable numbers.
machine::MachineParams calibration_machine() {
  machine::MachineParams m;
  m.name = "calibration";
  m.node.cpu_count = 1;
  m.node.cpu = machine::CpuParams{};
  m.node.cpu.frequency_hz = 100e6;  // 10 ns/cycle
  m.node.memory.levels.clear();     // cacheless: fixed memory cost
  m.node.memory.bus_frequency_hz = 100e6;
  m.node.memory.bus_width_bytes = 8;
  m.node.memory.bus_arbitration_cycles = 1;
  m.node.memory.dram_access_cycles = 3;  // mem access: (1+3+1)*10 = 50 ns
  m.topology.kind = machine::TopologyKind::kRing;
  m.topology.dims = {2, 1};
  m.router.switching = machine::Switching::kStoreAndForward;
  m.router.frequency_hz = 100e6;
  m.router.routing_decision_cycles = 1;  // 10 ns
  m.router.header_bytes = 8;
  m.router.flit_bytes = 4;
  m.router.max_packet_bytes = 4096;
  m.link.bandwidth_bytes_per_s = 100e6;  // 10 ns/byte
  m.link.propagation_delay = 0;
  m.link.virtual_channels = 2;
  m.nic.send_setup = 1000 * sim::kTicksPerNanosecond;
  m.nic.recv_setup = 1000 * sim::kTicksPerNanosecond;
  m.nic.copy_bytes_per_s = 1e9;  // 1 ns/byte
  return m;
}

constexpr sim::Tick kNs = sim::kTicksPerNanosecond;

TEST(ValidationTest, PureComputationMatchesCostTable) {
  // compute_kernel(elements=N, passes=P, stride=1) per inner iteration:
  //   load X[i]  : ifetch + load
  //   load Y[i]  : ifetch + load
  //   mul f64    : ifetch + mul(6)
  //   add f64    : ifetch + add(3)
  //   store Y[i] : ifetch + store
  //   loop upkeep: add i32 (reg) w/ ifetch, then branch(2) or
  //                branch_not_taken (ifetch+sub+ifetch) on exit.
  // With the default table: ifetch=1, load/store=1, each ifetch and each
  // load/store also pays the cacheless memory cost of 5 bus cycles (50 ns).
  machine::MachineParams m = calibration_machine();
  m.topology.dims = {1, 1};
  core::Workbench wb(m);
  constexpr std::uint64_t kN = 512;
  auto w = gen::make_offline_workload(
      1, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
        gen::compute_kernel(a, s, n, gen::ComputeKernelParams{kN, 1, 1});
      });
  const auto r = wb.run_detailed(w);
  ASSERT_TRUE(r.completed);

  // Issue cycles per iteration: fetches 6x1, load 2x1, mul 6, add 3,
  // store 1, loop add 1 = 19; the taken branch adds branch(2).
  // Memory accesses per iteration: 6 ifetches + 3 data + the branch's
  // target fetch = 10 x 50 ns.
  // Last iteration: branch_not_taken (ifetch+sub+ifetch: 3 cycles, 2
  // accesses) replaces the branch (2 cycles, 1 access).
  const std::uint64_t per_iter_issue = 19 + 2;          // cycles
  const std::uint64_t per_iter_mem = 10;                // accesses
  const std::uint64_t body_cycles = kN * per_iter_issue // all iterations
                                    - 2 + 3;            // swap branch -> exit
  const std::uint64_t mem_accesses = kN * per_iter_mem  // all iterations
                                     - 1 + 2;           // swap branch -> exit
  const sim::Tick expected =
      body_cycles * 10 * kNs + mem_accesses * 50 * kNs;
  EXPECT_EQ(r.simulated_time, expected);
}

TEST(ValidationTest, AsyncMessageDeliveryMatchesFormula) {
  // One asend(1024) from node 0, matching posted recv at node 1.
  // Receiver posts first (recv_setup burns at t=0..1000 ns), then blocks.
  // Sender timeline: send_setup (1000) + copy (1024 ns) -> asend returns.
  // Network (SAF, 1 hop): routing (10) + (1024+8 header) x 10 ns = 10330.
  // Receiver after arrival: copy (1024 ns).
  machine::MachineParams m = calibration_machine();
  sim::Simulator sim;
  node::Machine machine(sim, m);
  sim::Tick recv_done = 0;
  sim.spawn([](node::Machine& mm) -> sim::Process {
    co_await mm.comm_node(0).op_asend(1, 1024, 7);
  }(machine));
  sim.spawn([](sim::Simulator& s, node::Machine& mm, sim::Tick* out)
                -> sim::Process {
    co_await mm.comm_node(1).op_recv(0, 7);
    *out = s.now();
  }(sim, machine, &recv_done));
  sim.run();
  const sim::Tick inject = (1000 + 1024) * kNs;      // sender software
  const sim::Tick network = (10 + 10320) * kNs;      // SAF single hop
  const sim::Tick drain = 1024 * kNs;                // receiver copy
  EXPECT_EQ(recv_done, inject + network + drain);
}

TEST(ValidationTest, SyncPingPongRoundTrip) {
  // Sync send completes after a zero-payload ack returns.  Ack network
  // time: routing (10) + header-only packet (8 bytes x 10 = 80) = 90 ns.
  machine::MachineParams m = calibration_machine();
  sim::Simulator sim;
  node::Machine machine(sim, m);
  sim::Tick send_done = 0;
  sim.spawn([](sim::Simulator& s, node::Machine& mm, sim::Tick* out)
                -> sim::Process {
    co_await mm.comm_node(0).op_send(1, 256, 1);
    *out = s.now();
  }(sim, machine, &send_done));
  sim.spawn([](node::Machine& mm) -> sim::Process {
    co_await mm.comm_node(1).op_recv(0, 1);
  }(machine));
  sim.run();
  const sim::Tick inject = (1000 + 256) * kNs;
  const sim::Tick data_net = (10 + (256 + 8) * 10) * kNs;
  // Receiver posted recv at t=1000 (its setup ran concurrently), so the
  // message waits for no one; then the receiver copies (256 ns), consumes,
  // and the ack travels back (90 ns).
  const sim::Tick recv_copy = 256 * kNs;
  const sim::Tick ack_net = (10 + 8 * 10) * kNs;
  EXPECT_EQ(send_done, inject + data_net + recv_copy + ack_net);
}

TEST(ValidationTest, EffectiveBandwidthApproachesLinkRate) {
  // A very large transfer amortizes all fixed costs: effective rate of the
  // network leg must come within 5% of the 100 MB/s link (packetized SAF,
  // single hop: per 4096-byte packet overhead is routing + header only).
  machine::MachineParams m = calibration_machine();
  sim::Simulator sim;
  node::Machine machine(sim, m);
  constexpr std::uint64_t kBytes = 4 << 20;
  sim::Tick done = 0;
  sim.spawn([](sim::Simulator& s, node::Machine& mm, sim::Tick* out)
                -> sim::Process {
    const sim::Tick start = s.now();
    co_await mm.network().transmit(0, 1, kBytes);
    *out = s.now() - start;
  }(sim, machine, &done));
  sim.run();
  const double seconds =
      static_cast<double>(done) / static_cast<double>(sim::kTicksPerSecond);
  const double rate = static_cast<double>(kBytes) / seconds;
  EXPECT_GT(rate, 0.95 * 100e6);
  EXPECT_LE(rate, 100e6);
}

TEST(ValidationTest, BarrierCostIsLogRounds) {
  // Dissemination barrier on an 8-ring: 3 rounds; each round's exchange is
  // bounded below by one message leg; the whole barrier must cost at least
  // 3 legs and complete.
  machine::MachineParams m = calibration_machine();
  m.topology.dims = {8, 1};
  sim::Simulator sim;
  node::Machine machine(sim, m);
  auto w = gen::make_offline_workload(
      8, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
        gen::barrier(a, s, n, 10);
      });
  const auto handles = machine.launch_detailed(w);
  sim.run();
  ASSERT_TRUE(node::Machine::all_finished(handles));
  // 8 nodes x 3 rounds of (asend + recv).
  std::uint64_t sends = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    sends += machine.comm_node(i).asends.value();
  }
  EXPECT_EQ(sends, 24u);
  const sim::Tick one_leg = (1000 + 4) * kNs + (10 + 120) * kNs + 4 * kNs;
  EXPECT_GE(sim.now(), 3 * one_leg / 2);  // at least ~3 pipelined legs
}

}  // namespace
}  // namespace merm
