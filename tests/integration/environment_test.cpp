// End-to-end integration tests reproducing the paper's structural claims:
// Fig. 1 (both generators -> architecture models -> analysis), Fig. 2 (the
// hybrid model), Fig. 4 (the full workload-modelling matrix), and Section
// 3.1 (trace validity under physical-time interleaving).
#include <gtest/gtest.h>

#include <sstream>

#include "core/workbench.hpp"
#include "gen/apps.hpp"
#include "gen/direct_execution.hpp"
#include "gen/stochastic.hpp"
#include "gen/threaded_source.hpp"
#include "machine/config.hpp"
#include "trace/trace_io.hpp"

namespace merm {
namespace {

// Fig. 4 matrix, quadrant 1: reality-based, instruction level.
TEST(EnvironmentTest, RealityBasedInstructionLevel) {
  core::Workbench wb(machine::presets::t805_multicomputer(2, 2));
  auto w = gen::make_offline_workload(
      4, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
        gen::matmul_spmd(a, s, n, gen::MatmulParams{16});
      });
  const auto r = wb.run_detailed(w);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.operations, 1000u);
}

// Quadrant 2: stochastic, instruction level.
TEST(EnvironmentTest, StochasticInstructionLevel) {
  core::Workbench wb(machine::presets::generic_risc(2, 2));
  gen::StochasticDescription d;
  d.instructions_per_round = 500;
  d.rounds = 2;
  d.comm.pattern = gen::CommPattern::kRing;
  auto w = gen::make_stochastic_workload(d, 4);
  const auto r = wb.run_detailed(w);
  EXPECT_TRUE(r.completed);
}

// Quadrant 3: reality-based, task level (via the hybrid model's recorder).
TEST(EnvironmentTest, RealityBasedTaskLevel) {
  core::Workbench detailed(machine::presets::t805_multicomputer(2, 1));
  auto w = gen::make_offline_workload(
      2, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
        gen::stencil_spmd(a, s, n, gen::StencilParams{16, 2});
      });
  std::vector<node::TaskRecorder> recorders;
  const auto r1 = detailed.run_detailed(w, sim::kTickMax, &recorders);
  ASSERT_TRUE(r1.completed);

  core::Workbench task(machine::presets::t805_multicomputer(2, 1));
  trace::Workload tasks;
  for (const auto& rec : recorders) {
    tasks.sources.push_back(
        std::make_unique<trace::VectorSource>(rec.task_trace()));
  }
  const auto r2 = task.run_task_level(tasks);
  ASSERT_TRUE(r2.completed);
  // The derived task-level model reproduces the detailed execution time.
  const double err = std::abs(static_cast<double>(r2.simulated_time) -
                              static_cast<double>(r1.simulated_time)) /
                     static_cast<double>(r1.simulated_time);
  EXPECT_LT(err, 0.05) << "task-level " << r2.simulated_time << " vs detailed "
                       << r1.simulated_time;
  // And it needs far fewer kernel events than the instructions the detailed
  // model executed (that's the speedup mechanism).  Compared against the
  // operation count rather than the detailed run's event count because the
  // detailed model itself now runs event-lean via local time cursors.
  EXPECT_LT(r2.events_processed, r1.operations / 10);
}

// Quadrant 4: stochastic, task level.
TEST(EnvironmentTest, StochasticTaskLevel) {
  core::Workbench wb(machine::presets::t805_multicomputer(4, 4));
  gen::StochasticDescription d;
  d.rounds = 3;
  d.comm.pattern = gen::CommPattern::kRandomPerm;
  auto w = gen::make_stochastic_task_workload(d, 16);
  const auto r = wb.run_task_level(w);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.messages, 0u);
}

// Fig. 1 round trip including the analysis layer: run, register stats,
// export CSV, write traces to disk formats.
TEST(EnvironmentTest, FullEnvironmentRoundTrip) {
  core::Workbench wb(machine::presets::t805_multicomputer(2, 1));
  wb.register_all_stats();
  const auto traces = gen::record_app_traces(
      2, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
        gen::allreduce_spmd(a, s, n, gen::AllReduceParams{32, 1});
      });
  // Traces survive a binary round trip and then drive the simulation.
  std::stringstream buf;
  trace::write_binary(buf, traces);
  const auto loaded = trace::read_binary(buf);
  trace::Workload w;
  for (const auto& ops : loaded) {
    w.sources.push_back(std::make_unique<trace::VectorSource>(ops));
  }
  const auto r = wb.run_detailed(w);
  ASSERT_TRUE(r.completed);

  std::ostringstream csv;
  wb.stats().write_csv(csv);
  EXPECT_NE(csv.str().find("t805.net.messages,counter,"), std::string::npos);
  std::ostringstream report;
  wb.stats().print_report(report);
  EXPECT_FALSE(report.str().empty());
}

// Section 3.1's validity claim, end to end: with physical-time interleaving,
// a threaded (live) generator and an offline recording of the same
// deterministic program produce identical simulated executions.
TEST(EnvironmentTest, ThreadedAndOfflineRunsAgreeExactly) {
  const gen::AppFn app = [](gen::Annotator& a, trace::NodeId s,
                            std::uint32_t n) {
    gen::matmul_spmd(a, s, n, gen::MatmulParams{8});
  };
  core::Workbench wb1(machine::presets::t805_multicomputer(2, 1));
  auto offline = gen::make_offline_workload(2, app);
  const auto r_offline = wb1.run_detailed(offline);

  core::Workbench wb2(machine::presets::t805_multicomputer(2, 1));
  auto threaded = gen::make_threaded_workload(2, app);
  const auto r_threaded = wb2.run_detailed(threaded);

  ASSERT_TRUE(r_offline.completed);
  ASSERT_TRUE(r_threaded.completed);
  EXPECT_EQ(r_offline.simulated_time, r_threaded.simulated_time);
  EXPECT_EQ(r_offline.messages, r_threaded.messages);
  EXPECT_EQ(r_offline.operations, r_threaded.operations);
}

// A machine built from a config file behaves identically to its preset.
TEST(EnvironmentTest, ConfigFileMachineMatchesPreset) {
  const auto preset = machine::presets::t805_multicomputer(2, 1);
  const auto from_config =
      machine::parse_config_string(machine::write_config_string(preset));

  const gen::AppFn app = [](gen::Annotator& a, trace::NodeId s,
                            std::uint32_t n) {
    gen::stencil_spmd(a, s, n, gen::StencilParams{16, 2});
  };
  core::Workbench wb1(preset);
  auto w1 = gen::make_offline_workload(2, app);
  core::Workbench wb2(from_config);
  auto w2 = gen::make_offline_workload(2, app);
  EXPECT_EQ(wb1.run_detailed(w1).simulated_time,
            wb2.run_detailed(w2).simulated_time);
}

// Determinism across the whole stack: identical runs are bit-identical.
TEST(EnvironmentTest, WholeStackDeterminism) {
  auto run_once = [] {
    core::Workbench wb(machine::presets::generic_risc(2, 2));
    gen::StochasticDescription d;
    d.instructions_per_round = 300;
    d.rounds = 2;
    d.seed = 7;
    d.comm.pattern = gen::CommPattern::kAllToAll;
    auto w = gen::make_stochastic_workload(d, 4);
    const auto r = wb.run_detailed(w);
    return std::make_tuple(r.simulated_time, r.events_processed, r.operations,
                           r.messages);
  };
  EXPECT_EQ(run_once(), run_once());
}

// The direct-execution comparator plugged into the full environment: it runs
// much faster (fewer events) but is blind to node-architecture detail.
TEST(EnvironmentTest, DirectExecutionTradesAccuracyForSpeed) {
  const gen::AppFn app = [](gen::Annotator& a, trace::NodeId s,
                            std::uint32_t n) {
    gen::stencil_spmd(a, s, n, gen::StencilParams{32, 3});
  };
  core::Workbench detailed(machine::presets::t805_multicomputer(2, 1));
  auto w = gen::make_offline_workload(2, app);
  const auto r_detailed = detailed.run_detailed(w);

  gen::DirectExecutionModel dem;
  dem.cpu = machine::presets::t805_multicomputer(2, 1).node.cpu;
  dem.assumed_memory_cycles = 3;  // T805 external memory estimate
  core::Workbench direct(machine::presets::t805_multicomputer(2, 1));
  auto wd = gen::make_direct_execution_workload(
      gen::record_app_traces(2, app), dem);
  const auto r_direct = direct.run_task_level(wd);

  ASSERT_TRUE(r_detailed.completed);
  ASSERT_TRUE(r_direct.completed);
  // Vastly fewer simulator events than simulated instructions (the
  // direct-execution speed advantage; measured against the operation count
  // since the detailed model is itself event-lean under time cursors).
  EXPECT_LT(r_direct.events_processed, r_detailed.operations / 20);
  // And with a well-chosen static estimate, similar predicted time.
  const double rel = static_cast<double>(r_direct.simulated_time) /
                     static_cast<double>(r_detailed.simulated_time);
  EXPECT_GT(rel, 0.5);
  EXPECT_LT(rel, 2.0);
}

}  // namespace
}  // namespace merm
