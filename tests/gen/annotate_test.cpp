// Annotation translator tests: the "generic compiler" behaviour of
// Section 5.1.
#include "gen/annotate.hpp"

#include <gtest/gtest.h>

namespace merm::gen {
namespace {

using trace::DataType;
using trace::OpCode;
using trace::Operation;

struct Rig {
  VarTable vars;
  VectorSink sink;
  Annotator a{vars, sink};

  const std::vector<Operation>& ops() const { return sink.ops(); }
};

TEST(AnnotateTest, LoadOfMemoryVariableEmitsFetchPlusLoad) {
  Rig r;
  const VarId x = r.vars.declare_global("x", DataType::kDouble);
  r.a.load(x);
  ASSERT_EQ(r.ops().size(), 2u);
  EXPECT_EQ(r.ops()[0].code, OpCode::kIFetch);
  EXPECT_EQ(r.ops()[1], Operation::load(DataType::kDouble, r.vars[x].address));
}

TEST(AnnotateTest, RegisterVariableEmitsNothing) {
  Rig r;
  const VarId i = r.vars.declare_local("i", DataType::kInt32);
  r.vars.promote_to_register(i);
  r.a.load(i);
  r.a.store(i);
  EXPECT_TRUE(r.ops().empty());
}

TEST(AnnotateTest, ArrayIndexingUsesElementAddresses) {
  Rig r;
  const VarId arr = r.vars.declare_global("arr", DataType::kDouble, 10);
  r.a.load(arr, 0);
  r.a.load(arr, 7);
  EXPECT_EQ(r.ops()[1].value, r.vars[arr].address);
  EXPECT_EQ(r.ops()[3].value, r.vars[arr].address + 56);
}

TEST(AnnotateTest, ProgramCounterAdvancesPerInstruction) {
  Rig r;
  const VarId x = r.vars.declare_global("x", DataType::kInt32);
  const std::uint64_t start = r.a.here();
  r.a.load(x);
  r.a.arith(OpCode::kAdd, DataType::kInt32);
  r.a.store(x);
  EXPECT_EQ(r.a.here(), start + 3 * 4);
  // ifetch addresses are sequential.
  EXPECT_EQ(r.ops()[0].value, start);
  EXPECT_EQ(r.ops()[2].value, start + 4);
  EXPECT_EQ(r.ops()[4].value, start + 8);
}

TEST(AnnotateTest, BranchResetsPcForLoopBodies) {
  Rig r;
  const VarId x = r.vars.declare_global("x", DataType::kInt32);
  const std::uint64_t head = r.a.here();
  r.a.load(x);
  r.a.branch(head);
  r.a.load(x);  // second "iteration" refetches the same address
  EXPECT_EQ(r.ops()[0].value, r.ops()[3].value);
  EXPECT_EQ(r.ops()[2].code, OpCode::kBranch);
  EXPECT_EQ(r.ops()[2].value, head);
}

TEST(AnnotateTest, BinopExpandsToLoadLoadOpStore) {
  Rig r;
  const VarId c = r.vars.declare_global("c", DataType::kDouble);
  const VarId x = r.vars.declare_global("x", DataType::kDouble);
  const VarId y = r.vars.declare_global("y", DataType::kDouble);
  r.a.binop(OpCode::kMul, c, x, y);
  // ifetch+load, ifetch+load, ifetch+mul, ifetch+store = 8 ops.
  ASSERT_EQ(r.ops().size(), 8u);
  EXPECT_EQ(r.ops()[1].code, OpCode::kLoad);
  EXPECT_EQ(r.ops()[3].code, OpCode::kLoad);
  EXPECT_EQ(r.ops()[5].code, OpCode::kMul);
  EXPECT_EQ(r.ops()[5].type, DataType::kDouble);
  EXPECT_EQ(r.ops()[7].code, OpCode::kStore);
}

TEST(AnnotateTest, FusedMultiplyAddSkipsStore) {
  Rig r;
  const VarId x = r.vars.declare_global("x", DataType::kDouble);
  const VarId y = r.vars.declare_global("y", DataType::kDouble);
  r.a.fused_multiply_add(x, y, DataType::kDouble);
  ASSERT_EQ(r.ops().size(), 8u);  // 2 loads + mul + add, each fetched
  EXPECT_EQ(r.ops()[7].code, OpCode::kAdd);
  for (const auto& op : r.ops()) {
    EXPECT_NE(op.code, OpCode::kStore);
  }
}

TEST(AnnotateTest, CallAndRetManageReturnAddresses) {
  Rig r;
  const FuncId f = r.a.declare_function("f");
  const FuncId g = r.a.declare_function("g");
  EXPECT_NE(f, g);
  const std::uint64_t call_site = r.a.here();
  r.a.call(f);
  EXPECT_EQ(r.a.here(), f);
  r.a.call(g);
  EXPECT_EQ(r.a.here(), g);
  r.a.ret();  // back into f
  EXPECT_EQ(r.a.here(), f);
  r.a.ret();  // back to main
  EXPECT_EQ(r.a.here(), call_site);
  EXPECT_THROW(r.a.ret(), std::logic_error);

  ASSERT_EQ(r.ops().size(), 4u);
  EXPECT_EQ(r.ops()[0], Operation::call(f));
  EXPECT_EQ(r.ops()[3].code, OpCode::kRet);
  EXPECT_EQ(r.ops()[3].value, call_site);
}

TEST(AnnotateTest, CommunicationAnnotationsPassThrough) {
  Rig r;
  r.a.send(1024, 3, 5);
  r.a.recv(2, 5);
  r.a.asend(64, 1);
  r.a.arecv(trace::kNoNode, 9);
  r.a.compute(777);
  ASSERT_EQ(r.ops().size(), 5u);
  EXPECT_EQ(r.ops()[0], Operation::send(1024, 3, 5));
  EXPECT_EQ(r.ops()[1], Operation::recv(2, 5));
  EXPECT_EQ(r.ops()[2], Operation::asend(64, 1, 0));
  EXPECT_EQ(r.ops()[3], Operation::arecv(trace::kNoNode, 9));
  EXPECT_EQ(r.ops()[4], Operation::compute(777));
}

TEST(AnnotateTest, BranchNotTakenEmitsCompareAndFallThrough) {
  Rig r;
  const std::uint64_t before = r.a.here();
  r.a.branch_not_taken();
  EXPECT_EQ(r.a.here(), before + 8);  // two instructions
  ASSERT_EQ(r.ops().size(), 3u);      // ifetch, sub, ifetch
  EXPECT_EQ(r.ops()[1].code, OpCode::kSub);
}

TEST(AnnotateTest, ArithRejectsNonArithmeticOpcode) {
  Rig r;
  EXPECT_THROW(r.a.arith(OpCode::kLoad, DataType::kInt32),
               std::invalid_argument);
}

TEST(AnnotateTest, EmittedCounterMatchesSink) {
  Rig r;
  const VarId x = r.vars.declare_global("x", DataType::kInt32);
  r.a.binop(OpCode::kAdd, x, x, x);
  r.a.compute(1);
  EXPECT_EQ(r.a.emitted(), r.ops().size());
}

}  // namespace
}  // namespace merm::gen
