// Stochastic generator tests: determinism, the cross-node send/recv matching
// property (parameterized over every pattern), mix proportions, and machine
// runs that must terminate.
#include "gen/stochastic.hpp"

#include <gtest/gtest.h>

#include <map>

#include "machine/params.hpp"
#include "node/machine.hpp"
#include "sim/simulator.hpp"

namespace merm::gen {
namespace {

using trace::OpCode;
using trace::Operation;

std::vector<Operation> drain(trace::OperationSource& src) {
  std::vector<Operation> out;
  while (auto op = src.next()) out.push_back(*op);
  return out;
}

StochasticDescription small_desc() {
  StochasticDescription d;
  d.instructions_per_round = 200;
  d.rounds = 3;
  d.seed = 99;
  return d;
}

TEST(StochasticTest, SameSeedSameTrace) {
  StochasticSource a(small_desc(), 1, 4);
  StochasticSource b(small_desc(), 1, 4);
  EXPECT_EQ(drain(a), drain(b));
}

TEST(StochasticTest, DifferentNodesDifferentComputation) {
  StochasticSource a(small_desc(), 0, 4);
  StochasticSource b(small_desc(), 1, 4);
  EXPECT_NE(drain(a), drain(b));
}

TEST(StochasticTest, TraceEndsAfterConfiguredRounds) {
  StochasticSource src(small_desc(), 0, 1);
  const auto ops = drain(src);
  EXPECT_FALSE(ops.empty());
  EXPECT_EQ(src.next(), std::nullopt);
  std::uint64_t instructions = 0;
  for (const auto& op : ops) {
    if (op.code == OpCode::kIFetch) ++instructions;
  }
  // Roughly rounds * instructions_per_round fetches (branches add a few).
  EXPECT_GE(instructions, 3u * 200u);
}

TEST(StochasticTest, MixProportionsRoughlyHonored) {
  StochasticDescription d = small_desc();
  d.instructions_per_round = 20000;
  d.rounds = 1;
  d.comm.pattern = CommPattern::kNone;
  d.mix = OperationMix{};
  StochasticSource src(d, 0, 1);
  std::map<OpCode, int> histogram;
  for (const auto& op : drain(src)) histogram[op.code] += 1;
  const double total = 20000;
  EXPECT_NEAR(histogram[OpCode::kLoad] / total, 0.25, 0.02);
  EXPECT_NEAR(histogram[OpCode::kStore] / total, 0.10, 0.02);
  EXPECT_NEAR(histogram[OpCode::kAdd] / total, 0.30, 0.02);
  EXPECT_NEAR(histogram[OpCode::kDiv] / total, 0.05, 0.01);
  // Branch fraction applies on top of instructions.
  EXPECT_NEAR(histogram[OpCode::kBranch] / total, 0.10, 0.02);
}

TEST(StochasticTest, AddressesStayInWorkingSets) {
  StochasticDescription d = small_desc();
  d.memory.data_working_set = 4096;
  d.memory.code_working_set = 1024;
  d.comm.pattern = CommPattern::kNone;
  StochasticSource src(d, 0, 1);
  for (const auto& op : drain(src)) {
    if (trace::is_memory_access(op.code)) {
      EXPECT_GE(op.value, 0x100000u);
      EXPECT_LT(op.value, 0x100000u + 4096 + 8);
    } else if (trace::is_instruction_fetch(op.code)) {
      EXPECT_GE(op.value, 0x1000u);
      EXPECT_LT(op.value, 0x1000u + 1024u);
    }
  }
}

TEST(StochasticTest, TaskLevelEmitsComputeAndComm) {
  StochasticDescription d = small_desc();
  d.task_level = true;
  d.comm.pattern = CommPattern::kRing;
  StochasticSource src(d, 0, 4);
  const auto ops = drain(src);
  int computes = 0;
  int comms = 0;
  for (const auto& op : ops) {
    if (op.code == OpCode::kCompute) {
      ++computes;
      EXPECT_GT(op.value, 0u);
    } else {
      EXPECT_TRUE(trace::is_communication(op.code));
      ++comms;
    }
  }
  EXPECT_EQ(computes, 3);
  EXPECT_EQ(comms, 3 * 2);  // asend + recv per round
}

// The matching property: across all nodes, sends to j with tag t equal
// recvs at j expecting tag t, for every pattern and node count.
struct MatchCase {
  CommPattern pattern;
  std::uint32_t nodes;
  bool synchronous;
};

class StochasticMatchTest : public ::testing::TestWithParam<MatchCase> {};

TEST_P(StochasticMatchTest, EverySendHasAMatchingRecv) {
  const MatchCase c = GetParam();
  StochasticDescription d = small_desc();
  d.comm.pattern = c.pattern;
  d.comm.synchronous = c.synchronous;
  d.comm.exponential_sizes = true;

  for (std::uint32_t round = 0; round < d.rounds; ++round) {
    // (source, dest, tag) -> count, from both directions.
    std::map<std::tuple<int, int, int>, int> sends;
    std::map<std::tuple<int, int, int>, int> recvs;
    for (std::uint32_t n = 0; n < c.nodes; ++n) {
      const auto ops = StochasticSource::comm_schedule(
          d, static_cast<trace::NodeId>(n), c.nodes, round);
      for (const auto& op : ops) {
        if (op.code == OpCode::kSend || op.code == OpCode::kASend) {
          sends[{static_cast<int>(n), op.peer, op.tag}] += 1;
        } else if (op.code == OpCode::kRecv) {
          recvs[{op.peer, static_cast<int>(n), op.tag}] += 1;
        }
      }
    }
    EXPECT_EQ(sends, recvs) << "pattern mismatch in round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, StochasticMatchTest,
    ::testing::Values(MatchCase{CommPattern::kRing, 4, false},
                      MatchCase{CommPattern::kRing, 7, true},
                      MatchCase{CommPattern::kShift, 8, false},
                      MatchCase{CommPattern::kAllToAll, 5, false},
                      MatchCase{CommPattern::kGather, 6, false},
                      MatchCase{CommPattern::kRandomPerm, 8, false},
                      MatchCase{CommPattern::kRandomPerm, 3, false},
                      MatchCase{CommPattern::kNone, 4, false}));

// End-to-end: stochastic workloads must run to completion on a real machine
// (no deadlock) at both abstraction levels.
class StochasticRunTest : public ::testing::TestWithParam<MatchCase> {};

TEST_P(StochasticRunTest, WorkloadRunsToCompletionTaskLevel) {
  const MatchCase c = GetParam();
  StochasticDescription d = small_desc();
  d.task_level = true;
  d.comm.pattern = c.pattern;
  d.comm.synchronous = c.synchronous;
  machine::MachineParams params =
      machine::presets::generic_risc(c.nodes, 1);
  params.topology.kind = machine::TopologyKind::kRing;
  params.topology.dims = {c.nodes, 1};
  sim::Simulator sim;
  node::Machine m(sim, params);
  auto w = make_stochastic_task_workload(d, c.nodes);
  const auto handles = m.launch_task_level(w);
  sim.run();
  EXPECT_TRUE(node::Machine::all_finished(handles))
      << "deadlocked stochastic workload";
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, StochasticRunTest,
    ::testing::Values(MatchCase{CommPattern::kRing, 4, false},
                      MatchCase{CommPattern::kRing, 4, true},
                      MatchCase{CommPattern::kRing, 5, true},
                      MatchCase{CommPattern::kAllToAll, 4, false},
                      MatchCase{CommPattern::kGather, 5, false},
                      MatchCase{CommPattern::kRandomPerm, 8, false}));

TEST(StochasticTest, DetailedWorkloadRunsOnMulticomputer) {
  StochasticDescription d = small_desc();
  d.instructions_per_round = 100;
  d.comm.pattern = CommPattern::kRing;
  machine::MachineParams params = machine::presets::t805_multicomputer(2, 2);
  sim::Simulator sim;
  node::Machine m(sim, params);
  auto w = make_stochastic_workload(d, 4);
  const auto handles = m.launch_detailed(w);
  sim.run();
  EXPECT_TRUE(node::Machine::all_finished(handles));
  EXPECT_GT(m.total_messages(), 0u);
}

TEST(StochasticTest, PhasesAlternateBehaviour) {
  StochasticDescription d = small_desc();
  d.rounds = 2;
  // Phase 0: pure FP arithmetic, ring comm.  Phase 1: pure loads, gather.
  StochasticPhase fp;
  fp.instructions = 500;
  fp.mix = OperationMix{0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0};
  fp.comm.pattern = CommPattern::kRing;
  StochasticPhase mem;
  mem.instructions = 300;
  mem.mix = OperationMix{1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  mem.comm.pattern = CommPattern::kGather;
  d.phases = {fp, mem};

  StochasticSource src(d, 1, 4);
  const auto ops = drain(src);
  // Segment structure: adds before the first comm op, loads after.
  std::uint64_t adds = 0;
  std::uint64_t loads = 0;
  for (const auto& op : ops) {
    if (op.code == OpCode::kAdd) ++adds;
    if (op.code == OpCode::kLoad) ++loads;
  }
  EXPECT_EQ(adds, 2u * 500u);
  EXPECT_EQ(loads, 2u * 300u);
  // Both comm patterns appear (ring: asend+recv; gather from node 1: asend
  // then recv of the scatter).
  std::uint64_t asends = 0;
  for (const auto& op : ops) {
    if (op.code == OpCode::kASend) ++asends;
  }
  EXPECT_EQ(asends, 2u * 2u);  // one per phase per round
}

TEST(StochasticTest, PhasedWorkloadStillMatchesAcrossNodes) {
  StochasticDescription d = small_desc();
  d.rounds = 2;
  StochasticPhase a;
  a.comm.pattern = CommPattern::kRing;
  StochasticPhase b;
  b.comm.pattern = CommPattern::kAllToAll;
  d.phases = {a, b};

  machine::MachineParams params = machine::presets::generic_risc(2, 2);
  sim::Simulator sim;
  node::Machine m(sim, params);
  auto w = make_stochastic_task_workload(d, 4);
  const auto handles = m.launch_task_level(w);
  sim.run();
  EXPECT_TRUE(node::Machine::all_finished(handles));
}

TEST(StochasticTest, MultiCpuWorkloadOnlyCpu0Communicates) {
  StochasticDescription d = small_desc();
  d.comm.pattern = CommPattern::kRing;
  auto w = make_stochastic_workload(d, 2, /*cpus_per_node=*/2);
  ASSERT_EQ(w.node_count(), 4u);
  // Sources 1 and 3 (cpu 1 of each node) must contain no communication.
  for (std::size_t idx : {1u, 3u}) {
    auto& src = *w.sources[idx];
    while (auto op = src.next()) {
      EXPECT_FALSE(trace::is_communication(op->code));
    }
  }
}

}  // namespace
}  // namespace merm::gen
