// Physical-time interleaving tests (Sections 2, 3.1).
//
// The crucial properties: (1) a threaded application suspends at every
// global event until the simulator resumes it, (2) for timing-independent
// programs the threaded trace equals the offline trace, and (3) for
// timing-*dependent* programs the generated trace differs across
// architectures — the whole reason naive trace-driven simulation is invalid
// for multiprocessors.
#include "gen/threaded_source.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "gen/apps.hpp"
#include "machine/params.hpp"
#include "node/machine.hpp"
#include "sim/simulator.hpp"

namespace merm::gen {
namespace {

using trace::OpCode;
using trace::Operation;

TEST(ThreadedSourceTest, DrainsLocalOperations) {
  ThreadedSource src([](AppContext& ctx) {
    for (int i = 0; i < 100; ++i) {
      ctx.emit(Operation::add(trace::DataType::kInt32));
    }
  });
  int count = 0;
  while (auto op = src.next()) {
    EXPECT_EQ(op->code, OpCode::kAdd);
    ++count;
  }
  EXPECT_EQ(count, 100);
  EXPECT_EQ(src.next(), std::nullopt);
}

TEST(ThreadedSourceTest, GlobalEventSuspendsUntilDone) {
  ThreadedSource src([](AppContext& ctx) {
    ctx.emit(Operation::asend(64, 1, 0));
    // This line must not run before global_event_done:
    ctx.emit(Operation::compute(static_cast<sim::Tick>(ctx.now())));
  });
  auto op = src.next();
  ASSERT_TRUE(op.has_value());
  EXPECT_EQ(op->code, OpCode::kASend);
  // The app is now suspended; pulling again without completing the global
  // event is a protocol violation and must fail loudly.
  EXPECT_THROW(src.next(), std::logic_error);
  src.global_event_done(123456);
  auto op2 = src.next();
  ASSERT_TRUE(op2.has_value());
  EXPECT_EQ(op2->code, OpCode::kCompute);
  // The app observed the simulated completion time via the feedback path.
  EXPECT_EQ(op2->value, 123456u);
}

TEST(ThreadedSourceTest, AppExceptionSurfacesFromNext) {
  ThreadedSource src([](AppContext& ctx) {
    ctx.emit(Operation::compute(1));
    throw std::runtime_error("app exploded");
  });
  // Drain until the error arrives.
  try {
    while (src.next()) {
    }
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "app exploded");
  }
}

TEST(ThreadedSourceTest, DestructionUnblocksRunningApp) {
  // App emits forever; destroying the source must not hang.
  auto src = std::make_unique<ThreadedSource>(
      [](AppContext& ctx) {
        for (;;) {
          ctx.emit(Operation::add(trace::DataType::kInt32));
        }
      },
      /*queue_capacity=*/16);
  for (int i = 0; i < 5; ++i) src->next();
  src.reset();  // joins the thread; test passes if it returns
  SUCCEED();
}

TEST(ThreadedSourceTest, DestructionUnblocksAppWaitingOnGlobalEvent) {
  auto src = std::make_unique<ThreadedSource>([](AppContext& ctx) {
    ctx.emit(Operation::recv(0, 0));
    ctx.emit(Operation::compute(1));
  });
  src->next();  // app now suspended at the recv
  src.reset();
  SUCCEED();
}

TEST(ThreadedSourceTest, BoundedQueueThrottlesRunahead) {
  // With capacity 4, the app cannot run arbitrarily far ahead.
  std::atomic<int> emitted{0};
  ThreadedSource src(
      [&emitted](AppContext& ctx) {
        for (int i = 0; i < 100; ++i) {
          ctx.emit(Operation::add(trace::DataType::kInt32));
          emitted.fetch_add(1);
        }
      },
      /*queue_capacity=*/4);
  // Give the app thread a chance to run ahead as far as it can.
  auto first = src.next();
  ASSERT_TRUE(first.has_value());
  for (int spin = 0; spin < 1000 && emitted.load() < 5; ++spin) {
    std::this_thread::yield();
  }
  EXPECT_LE(emitted.load(), 6);  // capacity + in-flight slack
  while (src.next()) {
  }
  EXPECT_EQ(emitted.load(), 100);
}

TEST(ThreadedSourceTest, ThreadedTraceEqualsOfflineForDeterministicApp) {
  const AppFn app = [](Annotator& a, trace::NodeId self, std::uint32_t nodes) {
    stencil_spmd(a, self, nodes, StencilParams{16, 2});
  };
  const auto offline = record_app_traces(4, app);

  // Pull each threaded source to exhaustion, acknowledging global events.
  auto threaded = make_threaded_workload(4, app);
  for (std::uint32_t n = 0; n < 4; ++n) {
    std::vector<Operation> ops;
    auto& src = *threaded.sources[n];
    while (auto op = src.next()) {
      ops.push_back(*op);
      if (trace::is_global_event(op->code)) {
        src.global_event_done(static_cast<sim::Tick>(ops.size()));
      }
    }
    EXPECT_EQ(ops, offline[n]) << "node " << n;
  }
}

TEST(ThreadedSourceTest, ThreadedWorkloadRunsOnMachine) {
  // End-to-end: real threads driving the detailed model, with the simulator
  // controlling thread resumption (the paper's actual configuration).
  machine::MachineParams params = machine::presets::t805_multicomputer(2, 1);
  sim::Simulator sim;
  node::Machine m(sim, params);
  auto w = make_threaded_workload(
      2, [](Annotator& a, trace::NodeId self, std::uint32_t nodes) {
        pingpong(a, self, nodes, PingPongParams{4, 256});
      });
  const auto handles = m.launch_detailed(w);
  sim.run();
  EXPECT_TRUE(node::Machine::all_finished(handles));
  EXPECT_EQ(m.total_messages(), 2u * 8u);  // 8 sync messages + 8 acks
}

// A timing-dependent application: it performs extra work only when the
// observed round-trip of its exchange exceeds a deadline.  On a slow network
// the trace therefore contains more operations than on a fast one — the
// physical-time interleaving captures architecture-dependent control flow.
// It needs AppContext::now(), so it is built directly on ThreadedSource.
trace::Workload make_adaptive_workload(sim::Tick deadline) {
  trace::Workload w;
  for (trace::NodeId self = 0; self < 2; ++self) {
    w.sources.push_back(std::make_unique<ThreadedSource>(
        [self, deadline](AppContext& ctx) {
          VarTable vars;
          Annotator a(vars, ctx);
          const VarId x = vars.declare_global("x", trace::DataType::kDouble);
          const trace::NodeId peer = 1 - self;
          for (int round = 0; round < 4; ++round) {
            const sim::Tick before = ctx.now();
            if (self == 0) {
              a.send(512, peer, round);
              a.recv(peer, round);
            } else {
              a.recv(peer, round);
              a.send(512, peer, round);
            }
            const sim::Tick elapsed = ctx.now() - before;
            if (elapsed > deadline) {
              // Architecture-dependent branch: catch-up work.
              for (int i = 0; i < 50; ++i) {
                a.binop(trace::OpCode::kAdd, x, x, x);
              }
            }
          }
        }));
  }
  return w;
}

TEST(ThreadedSourceTest, TimingDependentControlFlowDiffersAcrossMachines) {
  // Fast network: the exchange beats the deadline, no catch-up work.
  // Slow network (T805 store-and-forward): deadline blown, extra work traced.
  const sim::Tick deadline = 200 * sim::kTicksPerMicrosecond;

  auto run_ops = [&](const machine::MachineParams& params) {
    sim::Simulator sim;
    node::Machine m(sim, params);
    auto w = make_adaptive_workload(deadline);
    const auto handles = m.launch_detailed(w);
    sim.run();
    EXPECT_TRUE(node::Machine::all_finished(handles));
    return m.compute_node(0).cpu(0).ops_executed.value() +
           m.compute_node(1).cpu(0).ops_executed.value();
  };

  machine::MachineParams fast = machine::presets::generic_risc(2, 1);
  machine::MachineParams slow = machine::presets::t805_multicomputer(2, 1);
  const auto ops_fast = run_ops(fast);
  const auto ops_slow = run_ops(slow);
  EXPECT_GT(ops_slow, ops_fast)
      << "slow machine should trigger the catch-up branch";
}

}  // namespace
}  // namespace merm::gen
