// Variable descriptor table tests (Section 5.1).
#include "gen/vartable.hpp"

#include <gtest/gtest.h>

namespace merm::gen {
namespace {

using trace::DataType;

TEST(VarTableTest, GlobalsGetDistinctDataSegmentAddresses) {
  VarTable t;
  const VarId a = t.declare_global("a", DataType::kDouble);
  const VarId b = t.declare_global("b", DataType::kInt32);
  EXPECT_EQ(t[a].address, t.layout().data_base);
  EXPECT_EQ(t[b].address, t.layout().data_base + 8);
  EXPECT_EQ(t[a].storage, StorageClass::kGlobal);
  EXPECT_FALSE(t[a].in_register);
}

TEST(VarTableTest, ArraysReserveElementsTimesSize) {
  VarTable t;
  const VarId arr = t.declare_global("arr", DataType::kDouble, 100);
  const VarId next = t.declare_global("next", DataType::kInt8);
  EXPECT_EQ(t[next].address, t[arr].address + 800);
  EXPECT_EQ(t[arr].element_address(3), t[arr].address + 24);
}

TEST(VarTableTest, AddressesAreElementAligned) {
  VarTable t;
  t.declare_global("c", DataType::kInt8);
  const VarId d = t.declare_global("d", DataType::kDouble);
  EXPECT_EQ(t[d].address % 8, 0u);
}

TEST(VarTableTest, LocalsGrowDownwardFromStackBase) {
  VarTable t;
  const VarId x = t.declare_local("x", DataType::kInt32);
  const VarId y = t.declare_local("y", DataType::kDouble, 4);
  EXPECT_LT(t[x].address, t.layout().stack_base);
  EXPECT_LT(t[y].address, t[x].address);
  EXPECT_EQ(t[y].address % 8, 0u);
  EXPECT_EQ(t[x].storage, StorageClass::kLocal);
}

TEST(VarTableTest, FirstArgumentsAreRegisterAllocated) {
  VarTable t;
  t.push_frame();
  for (std::uint32_t i = 0; i < VarTable::kRegisterArgs; ++i) {
    const VarId v =
        t.declare_argument("arg" + std::to_string(i), DataType::kInt32);
    EXPECT_TRUE(t[v].in_register) << i;
  }
  const VarId spilled = t.declare_argument("spilled", DataType::kInt32);
  EXPECT_FALSE(t[spilled].in_register);
  EXPECT_LT(t[spilled].address, t.layout().stack_base);
}

TEST(VarTableTest, FramesReclaimStackAndVars) {
  VarTable t;
  const VarId outer = t.declare_local("outer", DataType::kInt32);
  const std::size_t before = t.size();
  t.push_frame();
  const VarId inner = t.declare_local("inner", DataType::kDouble, 16);
  EXPECT_LT(t[inner].address, t[outer].address);
  EXPECT_EQ(t.frame_depth(), 2u);
  const std::uint64_t inner_addr = t[inner].address;
  t.pop_frame();
  EXPECT_EQ(t.size(), before);
  EXPECT_EQ(t.frame_depth(), 1u);
  // New locals reuse the reclaimed stack space.
  const VarId again = t.declare_local("again", DataType::kDouble, 16);
  EXPECT_EQ(t[again].address, inner_addr);
  EXPECT_LT(t[again].address, t[outer].address);
}

TEST(VarTableTest, PopOutermostFrameThrows) {
  VarTable t;
  EXPECT_THROW(t.pop_frame(), std::logic_error);
}

TEST(VarTableTest, PromoteToRegister) {
  VarTable t;
  const VarId i = t.declare_local("i", DataType::kInt32);
  t.promote_to_register(i);
  EXPECT_TRUE(t[i].in_register);
  const VarId arr = t.declare_local("arr", DataType::kInt32, 8);
  EXPECT_THROW(t.promote_to_register(arr), std::invalid_argument);
}

TEST(VarTableTest, ZeroElementsRejected) {
  VarTable t;
  EXPECT_THROW(t.declare_global("z", DataType::kInt32, 0),
               std::invalid_argument);
  EXPECT_THROW(t.declare_local("z", DataType::kInt32, 0),
               std::invalid_argument);
}

TEST(VarTableTest, RegionsAreDisjoint) {
  VarTable t;
  const VarId g = t.declare_global("g", DataType::kInt64, 1000);
  const VarId l = t.declare_local("l", DataType::kInt64, 1000);
  // Globals sit far below locals; code below globals.
  EXPECT_LT(t.layout().code_base, t[g].address);
  EXPECT_LT(t[g].address + 8000, t[l].address);
}

}  // namespace
}  // namespace merm::gen
