// Direct-execution baseline tests: folding correctness and — the paper's
// central argument — blindness to cache parameters.
#include "gen/direct_execution.hpp"

#include <gtest/gtest.h>

#include "gen/apps.hpp"
#include "machine/params.hpp"
#include "node/machine.hpp"
#include "sim/simulator.hpp"

namespace merm::gen {
namespace {

using trace::DataType;
using trace::OpCode;
using trace::Operation;

TEST(DirectExecutionTest, FoldsComputationalRunsIntoCompute) {
  DirectExecutionModel m;
  m.cpu.frequency_hz = 100e6;  // 10 ns / cycle
  m.assumed_memory_cycles = 2;
  const std::vector<Operation> ops{
      Operation::ifetch(0x1000),                  // 1 + 2 = 3 cycles
      Operation::add(DataType::kInt32),           // 1
      Operation::load(DataType::kInt32, 0x100),   // 1 + 2 = 3
      Operation::asend(64, 1, 0),
      Operation::div(DataType::kInt32),           // 16
      Operation::recv(1, 0),
  };
  const auto folded = estimate_direct_execution(ops, m);
  ASSERT_EQ(folded.size(), 4u);
  EXPECT_EQ(folded[0].code, OpCode::kCompute);
  EXPECT_EQ(folded[0].value, 70u * sim::kTicksPerNanosecond);  // 7 cycles
  EXPECT_EQ(folded[1].code, OpCode::kASend);
  EXPECT_EQ(folded[2].code, OpCode::kCompute);
  EXPECT_EQ(folded[2].value, 160u * sim::kTicksPerNanosecond);
  EXPECT_EQ(folded[3].code, OpCode::kRecv);
}

TEST(DirectExecutionTest, ExistingComputeOpsPassThrough) {
  DirectExecutionModel m;
  const std::vector<Operation> ops{
      Operation::compute(999),
      Operation::add(DataType::kInt32),
  };
  const auto folded = estimate_direct_execution(ops, m);
  ASSERT_EQ(folded.size(), 2u);
  EXPECT_EQ(folded[0].value, 999u);
  EXPECT_EQ(folded[1].code, OpCode::kCompute);
}

TEST(DirectExecutionTest, EmptyTraceFoldsToEmpty) {
  EXPECT_TRUE(
      estimate_direct_execution({}, DirectExecutionModel{}).empty());
}

TEST(DirectExecutionTest, WorkloadRunsOnCommModel) {
  const auto traces = record_app_traces(
      4, [](Annotator& a, trace::NodeId s, std::uint32_t n) {
        stencil_spmd(a, s, n, StencilParams{16, 2});
      });
  DirectExecutionModel dem;
  dem.cpu = machine::presets::t805_multicomputer(2, 2).node.cpu;
  auto w = make_direct_execution_workload(traces, dem);
  machine::MachineParams params = machine::presets::t805_multicomputer(2, 2);
  sim::Simulator sim;
  node::Machine m(sim, params);
  const auto handles = m.launch_task_level(w);
  sim.run();
  EXPECT_TRUE(node::Machine::all_finished(handles));
  EXPECT_GT(m.total_messages(), 0u);
}

// The paper's Section 2 argument, as an executable fact: sweeping the L1
// size moves the detailed model's execution time but cannot move the
// direct-execution estimate.
TEST(DirectExecutionTest, BlindToCacheParameters) {
  const AppFn app = [](Annotator& a, trace::NodeId s, std::uint32_t n) {
    compute_kernel(a, s, n, ComputeKernelParams{8192, 2, 1});
  };

  auto detailed_time = [&](std::uint64_t l1_bytes) {
    machine::MachineParams params = machine::presets::generic_risc(1, 1);
    params.topology.dims = {1, 1};
    params.node.memory.split_l1 = false;
    params.node.memory.levels = {machine::CacheLevelParams{
        l1_bytes, 32, 2, 1, machine::WritePolicy::kWriteBack, true}};
    sim::Simulator sim;
    node::Machine m(sim, params);
    auto w = make_offline_workload(1, app);
    m.launch_detailed(w);
    sim.run();
    return sim.now();
  };

  auto direct_time = [&](std::uint64_t /*l1_bytes: unused — that's the point*/) {
    DirectExecutionModel dem;
    dem.cpu = machine::presets::generic_risc(1, 1).node.cpu;
    machine::MachineParams params = machine::presets::generic_risc(1, 1);
    params.topology.dims = {1, 1};
    sim::Simulator sim;
    node::Machine m(sim, params);
    auto w = make_direct_execution_workload(record_app_traces(1, app), dem);
    m.launch_task_level(w);
    sim.run();
    return sim.now();
  };

  // Working set is 2 x 8192 doubles = 128 KiB.
  const auto detailed_small = detailed_time(4 * 1024);
  const auto detailed_large = detailed_time(256 * 1024);
  EXPECT_GT(detailed_small, detailed_large * 12 / 10)
      << "detailed model must react to cache size";

  const auto direct_small = direct_time(4 * 1024);
  const auto direct_large = direct_time(256 * 1024);
  EXPECT_EQ(direct_small, direct_large)
      << "direct execution cannot react to cache size";
}

}  // namespace
}  // namespace merm::gen
