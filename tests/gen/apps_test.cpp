// Annotated application kernel tests: traces are well-formed, SPMD matched,
// and run to completion on real machines at the detailed level.
#include "gen/apps.hpp"

#include <gtest/gtest.h>

#include <map>

#include "machine/params.hpp"
#include "node/machine.hpp"
#include "sim/simulator.hpp"

namespace merm::gen {
namespace {

using trace::OpCode;
using trace::Operation;

// Sends and receives across all node traces must pair up exactly.
void expect_matched(const std::vector<std::vector<Operation>>& traces) {
  std::map<std::tuple<int, int, int>, int> sends;
  int wildcard_recvs = 0;
  int sends_total = 0;
  std::map<std::tuple<int, int, int>, int> recvs;
  for (std::size_t n = 0; n < traces.size(); ++n) {
    for (const auto& op : traces[n]) {
      if (op.code == OpCode::kSend || op.code == OpCode::kASend) {
        sends[{static_cast<int>(n), op.peer, op.tag}] += 1;
        ++sends_total;
      } else if (op.code == OpCode::kRecv || op.code == OpCode::kARecv) {
        if (op.peer == trace::kNoNode) {
          ++wildcard_recvs;
        } else {
          recvs[{op.peer, static_cast<int>(n), op.tag}] += 1;
        }
      }
    }
  }
  if (wildcard_recvs == 0) {
    EXPECT_EQ(sends, recvs);
  } else {
    int recvs_total = wildcard_recvs;
    for (const auto& [key, count] : recvs) recvs_total += count;
    EXPECT_EQ(sends_total, recvs_total);
  }
}

std::uint64_t count_code(const std::vector<Operation>& ops, OpCode c) {
  std::uint64_t n = 0;
  for (const auto& op : ops) {
    if (op.code == c) ++n;
  }
  return n;
}

TEST(AppsTest, MatmulTraceHasExpectedArithmeticVolume) {
  const auto traces = record_app_traces(
      4, [](Annotator& a, trace::NodeId self, std::uint32_t nodes) {
        matmul_spmd(a, self, nodes, MatmulParams{16});
      });
  ASSERT_EQ(traces.size(), 4u);
  expect_matched(traces);
  // Each node computes rows x n x n multiply-adds = 4*16*16 = 1024 muls.
  for (const auto& ops : traces) {
    EXPECT_EQ(count_code(ops, OpCode::kMul), 1024u);
    EXPECT_EQ(count_code(ops, OpCode::kASend), 3u);  // nodes-1 rotations
    EXPECT_EQ(count_code(ops, OpCode::kRecv), 3u);
  }
}

TEST(AppsTest, MatmulRejectsIndivisibleSize) {
  VarTable vars;
  VectorSink sink;
  Annotator a(vars, sink);
  EXPECT_THROW(matmul_spmd(a, 0, 3, MatmulParams{16}), std::invalid_argument);
}

TEST(AppsTest, StencilExchangesHalosWithNeighborsOnly) {
  const auto traces = record_app_traces(
      4, [](Annotator& a, trace::NodeId self, std::uint32_t nodes) {
        stencil_spmd(a, self, nodes, StencilParams{16, 3});
      });
  expect_matched(traces);
  // Interior nodes talk to two neighbors per iteration; edge nodes to one.
  EXPECT_EQ(count_code(traces[0], OpCode::kASend), 3u);
  EXPECT_EQ(count_code(traces[1], OpCode::kASend), 6u);
  EXPECT_EQ(count_code(traces[3], OpCode::kASend), 3u);
  // Only immediate neighbors appear as peers.
  for (const auto& op : traces[1]) {
    if (trace::is_communication(op.code)) {
      EXPECT_TRUE(op.peer == 0 || op.peer == 2);
    }
  }
}

TEST(AppsTest, StencilLoopBodiesRefetchSameAddresses) {
  const auto traces = record_app_traces(
      2, [](Annotator& a, trace::NodeId self, std::uint32_t nodes) {
        stencil_spmd(a, self, nodes, StencilParams{8, 2});
      });
  // Recurring ifetch addresses: with loops, distinct fetch addresses are far
  // fewer than total fetches.
  std::map<std::uint64_t, int> fetch_addrs;
  std::uint64_t fetches = 0;
  for (const auto& op : traces[0]) {
    if (op.code == OpCode::kIFetch) {
      fetch_addrs[op.value] += 1;
      ++fetches;
    }
  }
  EXPECT_LT(fetch_addrs.size() * 4, fetches);
}

TEST(AppsTest, AllReduceUsesLogRounds) {
  const auto traces = record_app_traces(
      8, [](Annotator& a, trace::NodeId self, std::uint32_t nodes) {
        allreduce_spmd(a, self, nodes, AllReduceParams{64, 1});
      });
  expect_matched(traces);
  for (const auto& ops : traces) {
    EXPECT_EQ(count_code(ops, OpCode::kASend), 3u);  // log2(8)
    EXPECT_EQ(count_code(ops, OpCode::kRecv), 3u);
  }
}

TEST(AppsTest, AllReduceRejectsNonPowerOfTwo) {
  VarTable vars;
  VectorSink sink;
  Annotator a(vars, sink);
  EXPECT_THROW(allreduce_spmd(a, 0, 6, AllReduceParams{}),
               std::invalid_argument);
}

TEST(AppsTest, PingPongOnlyInvolvesNodesZeroAndOne) {
  const auto traces = record_app_traces(
      4, [](Annotator& a, trace::NodeId self, std::uint32_t nodes) {
        pingpong(a, self, nodes, PingPongParams{5, 100});
      });
  expect_matched(traces);
  EXPECT_EQ(count_code(traces[0], OpCode::kSend), 5u);
  EXPECT_EQ(count_code(traces[1], OpCode::kSend), 5u);
  EXPECT_TRUE(traces[2].empty());
  EXPECT_TRUE(traces[3].empty());
}

TEST(AppsTest, MasterWorkerBalancesTasks) {
  const auto traces = record_app_traces(
      3, [](Annotator& a, trace::NodeId self, std::uint32_t nodes) {
        master_worker(a, self, nodes, MasterWorkerParams{7, 32, 64, 16});
      });
  expect_matched(traces);
  EXPECT_EQ(count_code(traces[0], OpCode::kASend), 7u);
  EXPECT_EQ(count_code(traces[0], OpCode::kRecv), 7u);
  // 7 tasks over 2 workers: 4 + 3.
  EXPECT_EQ(count_code(traces[1], OpCode::kRecv), 4u);
  EXPECT_EQ(count_code(traces[2], OpCode::kRecv), 3u);
}

TEST(AppsTest, TransposeIsAllToAllPersonalized) {
  const auto traces = record_app_traces(
      4, [](Annotator& a, trace::NodeId self, std::uint32_t nodes) {
        transpose_spmd(a, self, nodes, TransposeParams{16});
      });
  expect_matched(traces);
  for (std::size_t n = 0; n < traces.size(); ++n) {
    // Each node sends exactly one tile to every other node.
    std::map<trace::NodeId, int> per_peer;
    for (const auto& op : traces[n]) {
      if (op.code == OpCode::kASend) {
        per_peer[op.peer] += 1;
        // Tile size: (n/nodes)^2 doubles = 4*4*8.
        EXPECT_EQ(op.value, 128u);
      }
    }
    EXPECT_EQ(per_peer.size(), 3u);
    for (const auto& [peer, count] : per_peer) {
      EXPECT_EQ(count, 1);
      EXPECT_NE(peer, static_cast<trace::NodeId>(n));
    }
  }
}

TEST(AppsTest, ComputeKernelHasNoCommunication) {
  const auto traces = record_app_traces(
      1, [](Annotator& a, trace::NodeId self, std::uint32_t nodes) {
        compute_kernel(a, self, nodes, ComputeKernelParams{256, 2, 1});
      });
  for (const auto& op : traces[0]) {
    EXPECT_FALSE(trace::is_communication(op.code));
  }
  EXPECT_GT(traces[0].size(), 1000u);
}

// Every kernel must run to completion on a real multicomputer.
struct AppCase {
  const char* name;
  std::uint32_t nodes;
  AppFn app;
};

class AppRunTest : public ::testing::TestWithParam<AppCase> {};

TEST_P(AppRunTest, RunsToCompletionOnGenericRisc) {
  const AppCase& c = GetParam();
  machine::MachineParams params =
      machine::presets::generic_risc(c.nodes, 1);
  params.topology.kind = machine::TopologyKind::kRing;
  params.topology.dims = {c.nodes, 1};
  sim::Simulator sim;
  node::Machine m(sim, params);
  auto w = make_offline_workload(c.nodes, c.app);
  const auto handles = m.launch_detailed(w);
  sim.run();
  EXPECT_TRUE(node::Machine::all_finished(handles)) << c.name;
  EXPECT_GT(sim.now(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, AppRunTest,
    ::testing::Values(
        AppCase{"matmul", 4,
                [](Annotator& a, trace::NodeId s, std::uint32_t n) {
                  matmul_spmd(a, s, n, MatmulParams{16});
                }},
        AppCase{"stencil", 4,
                [](Annotator& a, trace::NodeId s, std::uint32_t n) {
                  stencil_spmd(a, s, n, StencilParams{16, 2});
                }},
        AppCase{"allreduce", 4,
                [](Annotator& a, trace::NodeId s, std::uint32_t n) {
                  allreduce_spmd(a, s, n, AllReduceParams{64, 2});
                }},
        AppCase{"pingpong", 2,
                [](Annotator& a, trace::NodeId s, std::uint32_t n) {
                  pingpong(a, s, n, PingPongParams{4, 512});
                }},
        AppCase{"master_worker", 4,
                [](Annotator& a, trace::NodeId s, std::uint32_t n) {
                  master_worker(a, s, n, MasterWorkerParams{9, 64, 128, 32});
                }},
        AppCase{"transpose", 4,
                [](Annotator& a, trace::NodeId s, std::uint32_t n) {
                  transpose_spmd(a, s, n, TransposeParams{16});
                }}),
    [](const ::testing::TestParamInfo<AppCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace merm::gen
