// Workload description file tests: round trips, overrides, errors, and
// behavioural equivalence of a parsed description with its source.
#include "gen/workload_config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace merm::gen {
namespace {

StochasticDescription sample_desc() {
  StochasticDescription d;
  d.instructions_per_round = 12345;
  d.rounds = 7;
  d.seed = 99;
  d.task_level = true;
  d.mean_task_ticks = 250 * sim::kTicksPerMicrosecond;
  d.mix.load = 0.4;
  d.mix.div = 0.11;
  d.mix.fp_fraction = 0.55;
  d.memory.data_working_set = 1 << 20;
  d.memory.spatial_locality = 0.9;
  d.comm.pattern = CommPattern::kGather;
  d.comm.message_bytes = 777;
  d.comm.exponential_sizes = true;
  d.comm.synchronous = true;
  return d;
}

TEST(WorkloadConfigTest, RoundTripPreservesEverything) {
  const StochasticDescription d = sample_desc();
  const StochasticDescription back =
      parse_workload_string(write_workload_string(d));
  EXPECT_EQ(back.instructions_per_round, d.instructions_per_round);
  EXPECT_EQ(back.rounds, d.rounds);
  EXPECT_EQ(back.seed, d.seed);
  EXPECT_EQ(back.task_level, d.task_level);
  EXPECT_EQ(back.mean_task_ticks, d.mean_task_ticks);
  EXPECT_DOUBLE_EQ(back.mix.load, d.mix.load);
  EXPECT_DOUBLE_EQ(back.mix.div, d.mix.div);
  EXPECT_DOUBLE_EQ(back.mix.fp_fraction, d.mix.fp_fraction);
  EXPECT_EQ(back.memory.data_working_set, d.memory.data_working_set);
  EXPECT_DOUBLE_EQ(back.memory.spatial_locality, d.memory.spatial_locality);
  EXPECT_EQ(back.comm.pattern, d.comm.pattern);
  EXPECT_EQ(back.comm.message_bytes, d.comm.message_bytes);
  EXPECT_EQ(back.comm.exponential_sizes, d.comm.exponential_sizes);
  EXPECT_EQ(back.comm.synchronous, d.comm.synchronous);
}

TEST(WorkloadConfigTest, ParsedDescriptionGeneratesIdenticalTraces) {
  const StochasticDescription d = sample_desc();
  const StochasticDescription parsed =
      parse_workload_string(write_workload_string(d));
  StochasticSource a(d, 1, 4);
  StochasticSource b(parsed, 1, 4);
  for (int i = 0; i < 2000; ++i) {
    const auto opa = a.next();
    const auto opb = b.next();
    ASSERT_EQ(opa.has_value(), opb.has_value());
    if (!opa) break;
    ASSERT_EQ(*opa, *opb) << "diverged at op " << i;
  }
}

TEST(WorkloadConfigTest, OverridesOnTopOfBase) {
  StochasticDescription base;
  base.rounds = 10;
  base.comm.pattern = CommPattern::kRing;
  std::istringstream is("rounds = 3\n[comm]\npattern = all_to_all\n");
  const StochasticDescription d = parse_workload(is, base);
  EXPECT_EQ(d.rounds, 3u);
  EXPECT_EQ(d.comm.pattern, CommPattern::kAllToAll);
  EXPECT_EQ(d.instructions_per_round, base.instructions_per_round);
}

TEST(WorkloadConfigTest, AllPatternsRoundTrip) {
  for (const CommPattern p :
       {CommPattern::kNone, CommPattern::kRing, CommPattern::kShift,
        CommPattern::kAllToAll, CommPattern::kGather,
        CommPattern::kRandomPerm}) {
    StochasticDescription d;
    d.comm.pattern = p;
    EXPECT_EQ(parse_workload_string(write_workload_string(d)).comm.pattern, p)
        << to_string(p);
  }
}

TEST(WorkloadConfigTest, ErrorsCarryLineNumbers) {
  try {
    parse_workload_string("rounds = 2\nbogus = 1\n");
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(WorkloadConfigTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_workload_string("[comm]\npattern = telepathy\n"),
               std::runtime_error);
  EXPECT_THROW(parse_workload_string("rounds banana\n"), std::runtime_error);
  EXPECT_THROW(parse_workload_string("[mystery]\nx = 1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_workload_string("rounds = not_a_number\n"),
               std::runtime_error);
  EXPECT_THROW(parse_workload_string("[comm\npattern = ring\n"),
               std::runtime_error);
}

TEST(WorkloadConfigTest, PhasesParseAndRoundTrip) {
  const StochasticDescription d = parse_workload_string(
      "rounds = 3\n"
      "instructions_per_round = 1000\n"
      "[comm]\n"
      "pattern = ring\n"
      "[phase.0]\n"
      "instructions = 800\n"
      "fp_fraction = 0.9\n"
      "pattern = ring\n"
      "[phase.1]\n"
      "instructions = 200\n"
      "data_working_set = 1048576\n"
      "pattern = gather\n");
  ASSERT_EQ(d.phases.size(), 2u);
  EXPECT_EQ(d.phases[0].instructions, 800u);
  EXPECT_DOUBLE_EQ(d.phases[0].mix.fp_fraction, 0.9);
  EXPECT_EQ(d.phases[0].comm.pattern, CommPattern::kRing);
  EXPECT_EQ(d.phases[1].instructions, 200u);
  EXPECT_EQ(d.phases[1].memory.data_working_set, 1u << 20);
  EXPECT_EQ(d.phases[1].comm.pattern, CommPattern::kGather);
  // Phase 1 inherited unset fields from the top level.
  EXPECT_DOUBLE_EQ(d.phases[1].mix.load, OperationMix{}.load);

  const StochasticDescription back =
      parse_workload_string(write_workload_string(d));
  ASSERT_EQ(back.phases.size(), 2u);
  EXPECT_EQ(back.phases[0].instructions, 800u);
  EXPECT_EQ(back.phases[1].comm.pattern, CommPattern::kGather);

  // And the parsed phased description generates identical traces.
  StochasticSource sa(d, 0, 4);
  StochasticSource sb(back, 0, 4);
  for (int i = 0; i < 3000; ++i) {
    const auto oa = sa.next();
    const auto ob = sb.next();
    ASSERT_EQ(oa.has_value(), ob.has_value());
    if (!oa) break;
    ASSERT_EQ(*oa, *ob);
  }
}

TEST(WorkloadConfigTest, CommentsIgnored) {
  const StochasticDescription d = parse_workload_string(
      "; full-line comment\nrounds = 4  # trailing\n");
  EXPECT_EQ(d.rounds, 4u);
}

TEST(WorkloadConfigTest, FileLoaderReportsPathAndLine) {
  const std::string path = "workload_config_test_tmp.wl";
  {
    std::ofstream out(path);
    out << "rounds = 2\n"
        << "bogus = 1\n";
  }
  try {
    (void)parse_workload_file(path);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path + ":2:"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());

  try {
    (void)parse_workload_file("no_such_file.wl");
    FAIL() << "expected a missing-file error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

TEST(WorkloadConfigTest, FileLoaderParsesAValidFile) {
  const std::string path = "workload_config_test_ok.wl";
  {
    std::ofstream out(path);
    write_workload(out, sample_desc());
  }
  const StochasticDescription d = parse_workload_file(path);
  EXPECT_EQ(d.rounds, 7u);
  EXPECT_EQ(d.comm.pattern, CommPattern::kGather);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace merm::gen
