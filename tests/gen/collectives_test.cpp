// Collective-communication tests: structural matching and machine runs for
// every (collective, node count) combination.
#include "gen/collectives.hpp"

#include <gtest/gtest.h>

#include <map>

#include "gen/apps.hpp"
#include "machine/params.hpp"
#include "node/machine.hpp"
#include "sim/simulator.hpp"

namespace merm::gen {
namespace {

using trace::OpCode;
using trace::Operation;

std::vector<std::vector<Operation>> trace_collective(
    std::uint32_t nodes, const std::function<void(Annotator&, trace::NodeId,
                                                  std::uint32_t)>& body) {
  return record_app_traces(nodes, [&](Annotator& a, trace::NodeId s,
                                      std::uint32_t n) { body(a, s, n); });
}

void expect_matched(const std::vector<std::vector<Operation>>& traces) {
  std::map<std::tuple<int, int, int>, int> sends;
  std::map<std::tuple<int, int, int>, int> recvs;
  for (std::size_t n = 0; n < traces.size(); ++n) {
    for (const auto& op : traces[n]) {
      if (op.code == OpCode::kASend || op.code == OpCode::kSend) {
        sends[{static_cast<int>(n), op.peer, op.tag}] += 1;
      } else if (op.code == OpCode::kRecv) {
        recvs[{op.peer, static_cast<int>(n), op.tag}] += 1;
      }
    }
  }
  EXPECT_EQ(sends, recvs);
}

class CollectiveNodesTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CollectiveNodesTest, BarrierMatchesAndRuns) {
  const std::uint32_t n = GetParam();
  const auto traces = trace_collective(
      n, [](Annotator& a, trace::NodeId s, std::uint32_t nn) {
        barrier(a, s, nn, 100);
      });
  expect_matched(traces);

  machine::MachineParams params = machine::presets::generic_risc(n, 1);
  params.topology.kind = machine::TopologyKind::kRing;
  params.topology.dims = {n, 1};
  sim::Simulator sim;
  node::Machine m(sim, params);
  auto w = make_offline_workload(
      n, [](Annotator& a, trace::NodeId s, std::uint32_t nn) {
        barrier(a, s, nn, 100);
      });
  const auto handles = m.launch_detailed(w);
  sim.run();
  EXPECT_TRUE(node::Machine::all_finished(handles)) << n << " nodes";
}

TEST_P(CollectiveNodesTest, BroadcastMatchesAndRuns) {
  const std::uint32_t n = GetParam();
  for (trace::NodeId root = 0;
       root < static_cast<trace::NodeId>(std::min(n, 3u)); ++root) {
    const auto traces = trace_collective(
        n, [root](Annotator& a, trace::NodeId s, std::uint32_t nn) {
          broadcast(a, s, nn, root, 1024, 200);
        });
    expect_matched(traces);
    // Everyone except the root receives exactly once.
    for (std::uint32_t node = 0; node < n; ++node) {
      int recvs = 0;
      for (const auto& op : traces[node]) {
        if (op.code == OpCode::kRecv) ++recvs;
      }
      EXPECT_EQ(recvs, node == static_cast<std::uint32_t>(root) ? 0 : 1)
          << "node " << node << " root " << root;
    }
  }
}

TEST_P(CollectiveNodesTest, ReduceMatchesAndRuns) {
  const std::uint32_t n = GetParam();
  const auto traces = trace_collective(
      n, [](Annotator& a, trace::NodeId s, std::uint32_t nn) {
        reduce(a, s, nn, 0, 8, 300);
      });
  expect_matched(traces);
  // Every non-root sends exactly once; total receives = n - 1.
  int total_recvs = 0;
  for (std::uint32_t node = 0; node < n; ++node) {
    int sends = 0;
    for (const auto& op : traces[node]) {
      if (op.code == OpCode::kASend) ++sends;
      if (op.code == OpCode::kRecv) ++total_recvs;
    }
    EXPECT_EQ(sends, node == 0 ? 0 : 1) << "node " << node;
  }
  EXPECT_EQ(total_recvs, static_cast<int>(n) - 1);

  machine::MachineParams params = machine::presets::generic_risc(n, 1);
  params.topology.kind = machine::TopologyKind::kRing;
  params.topology.dims = {n, 1};
  sim::Simulator sim;
  node::Machine m(sim, params);
  auto w = make_offline_workload(
      n, [](Annotator& a, trace::NodeId s, std::uint32_t nn) {
        reduce(a, s, nn, 0, 8, 300);
      });
  const auto handles = m.launch_detailed(w);
  sim.run();
  EXPECT_TRUE(node::Machine::all_finished(handles));
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, CollectiveNodesTest,
                         ::testing::Values(2u, 3u, 4u, 5u, 8u, 13u));

TEST(CollectivesTest, SingleNodeCollectivesAreNoOps) {
  const auto traces = trace_collective(
      1, [](Annotator& a, trace::NodeId s, std::uint32_t n) {
        barrier(a, s, n, 0);
        broadcast(a, s, n, 0, 64, 10);
        reduce(a, s, n, 0, 8, 20);
      });
  EXPECT_TRUE(traces[0].empty());
}

TEST(CollectivesTest, BarrierActuallySynchronizes) {
  // Node 0 computes long before the barrier; node 1 not at all.  After the
  // barrier both must be past node 0's compute time.
  constexpr sim::Tick kWork = 500 * sim::kTicksPerMicrosecond;
  machine::MachineParams params = machine::presets::generic_risc(2, 1);
  sim::Simulator sim;
  node::Machine m(sim, params);
  trace::Workload w;
  w.sources.push_back(std::make_unique<trace::VectorSource>([] {
    VarTable vars;
    VectorSink sink;
    Annotator a(vars, sink);
    a.compute(kWork);
    barrier(a, 0, 2, 40);
    return sink.take();
  }()));
  w.sources.push_back(std::make_unique<trace::VectorSource>([] {
    VarTable vars;
    VectorSink sink;
    Annotator a(vars, sink);
    barrier(a, 1, 2, 40);
    return sink.take();
  }()));
  const auto handles = m.launch_detailed(w);
  sim.run();
  EXPECT_TRUE(node::Machine::all_finished(handles));
  EXPECT_GT(sim.now(), kWork);
}

}  // namespace
}  // namespace merm::gen
