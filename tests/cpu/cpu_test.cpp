// CPU model tests: per-operation timing against the cost table, memory
// coupling, stats, and misuse detection.
#include "cpu/cpu.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace merm::cpu {
namespace {

using trace::DataType;
using trace::OpCode;
using trace::Operation;

constexpr sim::Tick kNs = sim::kTicksPerNanosecond;

struct Rig {
  sim::Simulator sim;
  machine::NodeParams node;
  std::unique_ptr<memory::MemoryHierarchy> mem;
  std::unique_ptr<Cpu> cpu;

  explicit Rig(bool with_cache = true) {
    node.cpu_count = 1;
    node.cpu.frequency_hz = 100e6;  // 10 ns / cycle
    if (with_cache) {
      node.memory.levels = {machine::CacheLevelParams{
          1024, 32, 2, 1, machine::WritePolicy::kWriteBack, true}};
    } else {
      node.memory.levels.clear();
    }
    node.memory.bus_frequency_hz = 100e6;
    node.memory.bus_width_bytes = 8;
    node.memory.bus_arbitration_cycles = 1;
    node.memory.dram_access_cycles = 5;
    mem = std::make_unique<memory::MemoryHierarchy>(sim, node);
    cpu = std::make_unique<Cpu>(sim, node.cpu, *mem, 0);
  }

  sim::Tick execute(const Operation& op) {
    sim::Tick latency = 0;
    sim.spawn([](sim::Simulator& s, Cpu& c, Operation o,
                 sim::Tick* out) -> sim::Process {
      const sim::Tick start = s.now();
      co_await c.execute(o);
      *out = s.now() - start;
    }(sim, *cpu, op, &latency));
    sim.run();
    return latency;
  }
};

TEST(CpuTest, ArithmeticChargesCostTableCycles) {
  Rig rig;
  // Default table: add = 1 cycle, div(i32) = 16 cycles.
  EXPECT_EQ(rig.execute(Operation::add(DataType::kInt32)), 10 * kNs);
  EXPECT_EQ(rig.execute(Operation::div(DataType::kInt32)), 160 * kNs);
  EXPECT_EQ(rig.execute(Operation::mul(DataType::kDouble)), 60 * kNs);
  EXPECT_EQ(rig.cpu->arith_ops.value(), 3u);
}

TEST(CpuTest, LoadChargesIssuePlusMemory) {
  Rig rig;
  // issue 1 cycle (10 ns) + L1 lookup (10) + DRAM (1+5+4 = 100 ns).
  EXPECT_EQ(rig.execute(Operation::load(DataType::kInt32, 0x100)), 120 * kNs);
  // Warm: issue (10) + hit (10).
  EXPECT_EQ(rig.execute(Operation::load(DataType::kInt32, 0x104)), 20 * kNs);
  EXPECT_EQ(rig.cpu->memory_ops.value(), 2u);
}

TEST(CpuTest, IFetchGoesThroughMemory) {
  Rig rig;
  EXPECT_EQ(rig.execute(Operation::ifetch(0x1000)), 120 * kNs);
  EXPECT_EQ(rig.execute(Operation::ifetch(0x1004)), 20 * kNs);
  EXPECT_EQ(rig.cpu->fetch_ops.value(), 2u);
}

TEST(CpuTest, BranchCallRetCostsDiffer) {
  Rig rig;
  rig.execute(Operation::ifetch(0x1000));  // warm the line
  // branch=2, call=3, ret=3 cycles issue + 1 cycle hit.
  EXPECT_EQ(rig.execute(Operation::branch(0x1004)), 30 * kNs);
  EXPECT_EQ(rig.execute(Operation::call(0x1008)), 40 * kNs);
  EXPECT_EQ(rig.execute(Operation::ret(0x100c)), 40 * kNs);
}

TEST(CpuTest, LoadConstTouchesNoMemory) {
  Rig rig;
  const auto accesses_before = rig.mem->accesses.value();
  EXPECT_EQ(rig.execute(Operation::load_const(DataType::kDouble)), 10 * kNs);
  EXPECT_EQ(rig.mem->accesses.value(), accesses_before);
}

TEST(CpuTest, BusyTicksAndIssueCyclesAccumulate) {
  Rig rig;
  rig.execute(Operation::add(DataType::kInt32));
  rig.execute(Operation::div(DataType::kInt32));
  EXPECT_EQ(rig.cpu->busy_ticks(), 170 * kNs);
  EXPECT_EQ(rig.cpu->busy_cycles(), 17u);
  EXPECT_EQ(rig.cpu->issue_cycles.value(), 17u);
  EXPECT_EQ(rig.cpu->ops_executed.value(), 2u);
}

TEST(CpuTest, RejectsCommunicationOperations) {
  Rig rig;
  EXPECT_THROW(rig.execute(Operation::send(64, 1)), std::logic_error);
  EXPECT_THROW(rig.execute(Operation::recv(1)), std::logic_error);
  EXPECT_THROW(rig.execute(Operation::compute(100)), std::logic_error);
}

TEST(CpuTest, CachelessMachineMemoryOps) {
  Rig rig(/*with_cache=*/false);
  // issue (10) + bus+dram (1+5+1 beats = 70 ns) = 80 ns every time.
  EXPECT_EQ(rig.execute(Operation::load(DataType::kInt32, 0x100)), 80 * kNs);
  EXPECT_EQ(rig.execute(Operation::load(DataType::kInt32, 0x100)), 80 * kNs);
}

// Parameterized: issue cost honored for every computational opcode.
class CpuCostTest
    : public ::testing::TestWithParam<std::tuple<OpCode, DataType>> {};

TEST_P(CpuCostTest, IssueCyclesMatchCostTable) {
  const auto [code, type] = GetParam();
  Rig rig;
  Operation op{code, type, 0x40, trace::kNoNode, 0};
  rig.execute(op);
  EXPECT_EQ(rig.cpu->issue_cycles.value(),
            rig.node.cpu.cost(code, type));
}

INSTANTIATE_TEST_SUITE_P(
    AllComputational, CpuCostTest,
    ::testing::Combine(::testing::Values(OpCode::kLoad, OpCode::kStore,
                                         OpCode::kLoadConst, OpCode::kAdd,
                                         OpCode::kSub, OpCode::kMul,
                                         OpCode::kDiv, OpCode::kIFetch,
                                         OpCode::kBranch, OpCode::kCall,
                                         OpCode::kRet),
                       ::testing::Values(DataType::kInt32, DataType::kInt64,
                                         DataType::kFloat,
                                         DataType::kDouble)));

}  // namespace
}  // namespace merm::cpu
