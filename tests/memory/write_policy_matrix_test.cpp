// Parameterized matrix over the cache write policies x allocation choices:
// every combination must preserve basic soundness (warm hits, monotone
// traffic relations) with the documented policy-specific behaviours.
#include <gtest/gtest.h>

#include "memory/hierarchy.hpp"
#include "sim/simulator.hpp"

namespace merm::memory {
namespace {

constexpr sim::Tick kNs = sim::kTicksPerNanosecond;

struct PolicyCase {
  machine::WritePolicy policy;
  bool allocate_on_write_miss;
};

machine::NodeParams node_with(const PolicyCase& c) {
  machine::NodeParams p;
  p.cpu_count = 1;
  p.cpu.frequency_hz = 100e6;
  p.memory.levels = {machine::CacheLevelParams{
      1024, 32, 2, 1, c.policy, c.allocate_on_write_miss}};
  p.memory.bus_frequency_hz = 100e6;
  p.memory.bus_width_bytes = 8;
  p.memory.bus_arbitration_cycles = 1;
  p.memory.dram_access_cycles = 5;
  return p;
}

sim::Tick timed_access(sim::Simulator& sim, MemoryHierarchy& mem,
                       AccessType type, std::uint64_t addr) {
  sim::Tick latency = 0;
  sim.spawn([](sim::Simulator& s, MemoryHierarchy& m, AccessType t,
               std::uint64_t a, sim::Tick* out) -> sim::Process {
    const sim::Tick start = s.now();
    co_await m.access(0, t, a);
    *out = s.now() - start;
  }(sim, mem, type, addr, &latency));
  sim.run();
  return latency;
}

class WritePolicyMatrixTest : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(WritePolicyMatrixTest, WarmReadsAlwaysHitInOneCycle) {
  sim::Simulator sim;
  MemoryHierarchy mem(sim, node_with(GetParam()));
  timed_access(sim, mem, AccessType::kLoad, 0x100);
  EXPECT_EQ(timed_access(sim, mem, AccessType::kLoad, 0x104), 10 * kNs);
}

TEST_P(WritePolicyMatrixTest, WriteMissAllocationMatchesPolicy) {
  const PolicyCase c = GetParam();
  sim::Simulator sim;
  MemoryHierarchy mem(sim, node_with(c));
  timed_access(sim, mem, AccessType::kStore, 0x200);
  EXPECT_EQ(mem.l1(0, AccessType::kLoad)->contains(0x200),
            c.allocate_on_write_miss);
}

TEST_P(WritePolicyMatrixTest, LineStateReflectsPolicy) {
  const PolicyCase c = GetParam();
  sim::Simulator sim;
  MemoryHierarchy mem(sim, node_with(c));
  timed_access(sim, mem, AccessType::kLoad, 0x300);
  timed_access(sim, mem, AccessType::kStore, 0x300);
  const LineState st = mem.l1(0, AccessType::kLoad)->probe(0x300);
  if (c.policy == machine::WritePolicy::kWriteBack) {
    EXPECT_EQ(st, LineState::kModified);
  } else {
    // Write-through lines are never dirty.
    EXPECT_NE(st, LineState::kModified);
  }
}

TEST_P(WritePolicyMatrixTest, WriteTrafficOrdering) {
  // For the same store stream: write-through issues at least as many bus
  // transactions as write-back.
  const PolicyCase c = GetParam();
  auto traffic = [&](machine::WritePolicy policy) {
    PolicyCase cc = c;
    cc.policy = policy;
    sim::Simulator sim;
    MemoryHierarchy mem(sim, node_with(cc));
    for (int i = 0; i < 32; ++i) {
      timed_access(sim, mem, AccessType::kLoad, 0x400 + 8 * static_cast<std::uint64_t>(i % 8));
      timed_access(sim, mem, AccessType::kStore, 0x400 + 8 * static_cast<std::uint64_t>(i % 8));
    }
    return mem.bus().transactions.value();
  };
  EXPECT_GE(traffic(machine::WritePolicy::kWriteThrough),
            traffic(machine::WritePolicy::kWriteBack));
}

INSTANTIATE_TEST_SUITE_P(
    Combos, WritePolicyMatrixTest,
    ::testing::Values(PolicyCase{machine::WritePolicy::kWriteBack, true},
                      PolicyCase{machine::WritePolicy::kWriteBack, false},
                      PolicyCase{machine::WritePolicy::kWriteThrough, true},
                      PolicyCase{machine::WritePolicy::kWriteThrough, false}));

}  // namespace
}  // namespace merm::memory
