// Tags-only cache model unit tests: geometry, LRU, state transitions,
// evictions, and a parameterized sweep over geometries.
#include "memory/cache.hpp"

#include <gtest/gtest.h>

namespace merm::memory {
namespace {

machine::CacheLevelParams small_cache() {
  machine::CacheLevelParams p;
  p.size_bytes = 256;  // 4 sets x 2 ways x 32B lines
  p.line_bytes = 32;
  p.associativity = 2;
  return p;
}

TEST(CacheTest, StartsEmpty) {
  Cache c(small_cache(), "l1");
  EXPECT_EQ(c.resident_lines(), 0u);
  EXPECT_EQ(c.probe(0x100), LineState::kInvalid);
  EXPECT_FALSE(c.contains(0x100));
}

TEST(CacheTest, FillThenProbeHits) {
  Cache c(small_cache(), "l1");
  const auto ev = c.fill(0x100, LineState::kExclusive);
  EXPECT_FALSE(ev.valid);
  EXPECT_EQ(c.probe(0x100), LineState::kExclusive);
  // Any address within the same 32-byte line hits.
  EXPECT_EQ(c.probe(0x11f), LineState::kExclusive);
  EXPECT_EQ(c.probe(0x120), LineState::kInvalid);
}

TEST(CacheTest, LineBaseMasksOffset) {
  Cache c(small_cache(), "l1");
  EXPECT_EQ(c.line_base(0x137), 0x120u);
  EXPECT_EQ(c.line_base(0x120), 0x120u);
}

TEST(CacheTest, TouchUpdatesLruAndWriteSetsModified) {
  Cache c(small_cache(), "l1");
  c.fill(0x100, LineState::kExclusive);
  EXPECT_TRUE(c.touch(0x100, /*is_write=*/false));
  EXPECT_EQ(c.probe(0x100), LineState::kExclusive);
  EXPECT_TRUE(c.touch(0x100, /*is_write=*/true));
  EXPECT_EQ(c.probe(0x100), LineState::kModified);
  EXPECT_FALSE(c.touch(0x9999000, false));
}

TEST(CacheTest, LruEvictionPicksLeastRecentlyUsed) {
  Cache c(small_cache(), "l1");
  // Two lines mapping to the same set (set stride = 4 sets * 32 B = 128 B).
  c.fill(0x000, LineState::kExclusive);
  c.fill(0x080, LineState::kExclusive);  // same set 0, way 2
  c.touch(0x000, false);                 // make 0x000 most recent
  const auto ev = c.fill(0x100, LineState::kExclusive);  // set 0 again
  EXPECT_TRUE(ev.valid);
  EXPECT_EQ(ev.addr, 0x080u);  // LRU victim
  EXPECT_FALSE(ev.dirty);
  EXPECT_TRUE(c.contains(0x000));
  EXPECT_FALSE(c.contains(0x080));
}

TEST(CacheTest, DirtyEvictionReportsWriteback) {
  Cache c(small_cache(), "l1");
  c.fill(0x000, LineState::kModified);
  c.fill(0x080, LineState::kExclusive);
  c.touch(0x080, false);
  const auto ev = c.fill(0x100, LineState::kExclusive);
  EXPECT_TRUE(ev.valid);
  EXPECT_TRUE(ev.dirty);
  EXPECT_EQ(ev.addr, 0x000u);
  EXPECT_EQ(c.writebacks.value(), 1u);
  EXPECT_EQ(c.evictions.value(), 2u - 1u);  // one eviction so far
}

TEST(CacheTest, InvalidateAndDowngrade) {
  Cache c(small_cache(), "l1");
  c.fill(0x100, LineState::kModified);
  EXPECT_EQ(c.downgrade(0x100), LineState::kModified);
  EXPECT_EQ(c.probe(0x100), LineState::kShared);
  EXPECT_EQ(c.downgrade(0x100), LineState::kShared);  // no-op on Shared
  EXPECT_EQ(c.invalidate(0x100), LineState::kShared);
  EXPECT_EQ(c.probe(0x100), LineState::kInvalid);
  EXPECT_EQ(c.invalidate(0x100), LineState::kInvalid);
  EXPECT_EQ(c.invalidations.value(), 1u);
  EXPECT_EQ(c.downgrades.value(), 1u);
}

TEST(CacheTest, SetStateReturnsPrevious) {
  Cache c(small_cache(), "l1");
  c.fill(0x100, LineState::kExclusive);
  EXPECT_EQ(c.set_state(0x100, LineState::kShared), LineState::kExclusive);
  EXPECT_EQ(c.probe(0x100), LineState::kShared);
  EXPECT_EQ(c.set_state(0x999000, LineState::kShared), LineState::kInvalid);
}

TEST(CacheTest, VictimAddressReconstruction) {
  Cache c(small_cache(), "l1");
  // Fill every line of set 2 and overflow it; the reported victim address
  // must be the exact line base originally inserted.
  const std::uint64_t a = 2 * 32;           // set 2
  const std::uint64_t b = a + 128;          // same set, next tag
  const std::uint64_t d = a + 256;          // same set, third tag
  c.fill(a, LineState::kExclusive);
  c.fill(b, LineState::kExclusive);
  const auto ev = c.fill(d, LineState::kExclusive);
  EXPECT_TRUE(ev.valid);
  EXPECT_EQ(ev.addr, a);
}

TEST(CacheTest, HitRate) {
  Cache c(small_cache(), "l1");
  c.hits.add(3);
  c.misses.add(1);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.75);
}

TEST(CacheTest, FullyAssociativeUsesOneSet) {
  machine::CacheLevelParams p = small_cache();
  p.associativity = 0;
  Cache c(p, "fa");
  // 8 lines; addresses with any alignment coexist until the 9th.
  for (std::uint64_t i = 0; i < 8; ++i) {
    c.fill(i * 0x1000, LineState::kExclusive);
  }
  EXPECT_EQ(c.resident_lines(), 8u);
  const auto ev = c.fill(8 * 0x1000, LineState::kExclusive);
  EXPECT_TRUE(ev.valid);
  EXPECT_EQ(ev.addr, 0u);  // first-inserted is LRU
}

TEST(CacheTest, RejectsBadGeometry) {
  machine::CacheLevelParams p = small_cache();
  p.line_bytes = 48;  // not a power of two
  EXPECT_THROW(Cache(p, "bad"), std::invalid_argument);
  p = small_cache();
  p.size_bytes = 300;  // not divisible
  EXPECT_THROW(Cache(p, "bad"), std::invalid_argument);
}

TEST(CacheTest, FootprintScalesWithLineCount) {
  machine::CacheLevelParams small = small_cache();
  machine::CacheLevelParams big = small_cache();
  big.size_bytes = 64 * 1024;
  Cache cs(small, "s");
  Cache cb(big, "b");
  EXPECT_GT(cb.footprint_bytes(), cs.footprint_bytes());
  // Tags-only: footprint far below the modelled capacity.
  EXPECT_LT(cb.footprint_bytes(), big.size_bytes);
}

// Parameterized sweep: for any geometry, filling exactly `lines` distinct
// line addresses with a line-stride access pattern causes no evictions, and
// one more line in a full set evicts exactly one.
struct Geometry {
  std::uint64_t size;
  std::uint32_t line;
  std::uint32_t ways;
};

class CacheGeometryTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheGeometryTest, CapacityHoldsExactlyAllLines) {
  const Geometry g = GetParam();
  machine::CacheLevelParams p;
  p.size_bytes = g.size;
  p.line_bytes = g.line;
  p.associativity = g.ways;
  Cache c(p, "sweep");
  const std::uint64_t lines = g.size / g.line;
  for (std::uint64_t i = 0; i < lines; ++i) {
    const auto ev = c.fill(i * g.line, LineState::kExclusive);
    EXPECT_FALSE(ev.valid) << "premature eviction at line " << i;
  }
  EXPECT_EQ(c.resident_lines(), lines);
  // Everything still resident (sequential fill is conflict-free).
  for (std::uint64_t i = 0; i < lines; ++i) {
    EXPECT_TRUE(c.contains(i * g.line));
  }
  const auto ev = c.fill(lines * g.line, LineState::kExclusive);
  EXPECT_TRUE(ev.valid);
  EXPECT_EQ(c.resident_lines(), lines);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(Geometry{256, 32, 1}, Geometry{256, 32, 2},
                      Geometry{1024, 32, 4}, Geometry{4096, 64, 8},
                      Geometry{4096, 64, 0}, Geometry{8192, 128, 2},
                      Geometry{32768, 64, 8}, Geometry{512, 16, 4}));

}  // namespace
}  // namespace merm::memory
