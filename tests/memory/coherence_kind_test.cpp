// Directory vs snoopy coherence: both maintain the MESI invariant; their
// cost structures differ in the documented directions (directory pays a
// lookup everywhere and per-sharer invalidations; snooping broadcasts).
#include <gtest/gtest.h>

#include <set>

#include "memory/hierarchy.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace merm::memory {
namespace {

constexpr sim::Tick kNs = sim::kTicksPerNanosecond;

machine::NodeParams node_with(machine::CoherenceKind kind,
                              std::uint32_t cpus) {
  machine::NodeParams p;
  p.cpu_count = cpus;
  p.cpu.frequency_hz = 100e6;
  p.memory.levels = {machine::CacheLevelParams{
      1024, 32, 2, 1, machine::WritePolicy::kWriteBack, true}};
  p.memory.bus_frequency_hz = 100e6;
  p.memory.bus_width_bytes = 8;
  p.memory.bus_arbitration_cycles = 1;
  p.memory.dram_access_cycles = 5;
  p.memory.coherence = kind;
  p.memory.directory_lookup_cycles = 4;
  return p;
}

sim::Tick timed_access(sim::Simulator& sim, MemoryHierarchy& mem,
                       std::uint32_t cpu, AccessType type,
                       std::uint64_t addr) {
  sim::Tick latency = 0;
  sim.spawn([](sim::Simulator& s, MemoryHierarchy& m, std::uint32_t c,
               AccessType t, std::uint64_t a, sim::Tick* out) -> sim::Process {
    const sim::Tick start = s.now();
    co_await m.access(c, t, a);
    *out = s.now() - start;
  }(sim, mem, cpu, type, addr, &latency));
  sim.run();
  return latency;
}

TEST(CoherenceKindTest, DirectoryUpgradeCostScalesWithSharers) {
  // 4 CPUs all read a line; CPU 0 then writes it.
  auto upgrade_cost = [](machine::CoherenceKind kind) {
    sim::Simulator sim;
    MemoryHierarchy mem(sim, node_with(kind, 4));
    for (std::uint32_t c = 0; c < 4; ++c) {
      timed_access(sim, mem, c, AccessType::kLoad, 0x1000);
    }
    return timed_access(sim, mem, 0, AccessType::kStore, 0x1000);
  };
  const sim::Tick snoopy = upgrade_cost(machine::CoherenceKind::kSnoopy);
  const sim::Tick directory = upgrade_cost(machine::CoherenceKind::kDirectory);
  // Snoopy: hit (10) + one broadcast (10) = 20 ns.
  EXPECT_EQ(snoopy, 20 * kNs);
  // Directory: hit + lookup txn (1 arb + 4 dir = 50) + 3 invalidations.
  EXPECT_GT(directory, snoopy + 2 * 10 * kNs);
}

TEST(CoherenceKindTest, DirectoryPaysLookupOnUnsharedMiss) {
  auto cold_miss = [](machine::CoherenceKind kind) {
    sim::Simulator sim;
    MemoryHierarchy mem(sim, node_with(kind, 2));
    return timed_access(sim, mem, 0, AccessType::kLoad, 0x2000);
  };
  EXPECT_GT(cold_miss(machine::CoherenceKind::kDirectory),
            cold_miss(machine::CoherenceKind::kSnoopy));
}

TEST(CoherenceKindTest, UniprocessorUnaffectedByKind) {
  auto run = [](machine::CoherenceKind kind) {
    sim::Simulator sim;
    MemoryHierarchy mem(sim, node_with(kind, 1));
    sim::Tick total = 0;
    total += timed_access(sim, mem, 0, AccessType::kLoad, 0x100);
    total += timed_access(sim, mem, 0, AccessType::kStore, 0x100);
    total += timed_access(sim, mem, 0, AccessType::kLoad, 0x2000);
    return total;
  };
  EXPECT_EQ(run(machine::CoherenceKind::kSnoopy),
            run(machine::CoherenceKind::kDirectory));
}

class CoherenceKindInvariantTest
    : public ::testing::TestWithParam<std::tuple<machine::CoherenceKind, int>> {
};

TEST_P(CoherenceKindInvariantTest, MesiInvariantHolds) {
  const auto [kind, seed] = GetParam();
  constexpr std::uint32_t kCpus = 3;
  sim::Simulator sim;
  MemoryHierarchy mem(sim, node_with(kind, kCpus));
  std::set<std::uint64_t> lines_used;
  sim::Rng rng(static_cast<std::uint64_t>(seed));

  for (std::uint32_t c = 0; c < kCpus; ++c) {
    sim.spawn([](sim::Simulator& s, MemoryHierarchy& m, std::uint32_t cpu,
                 std::uint64_t sd, std::set<std::uint64_t>* used)
                  -> sim::Process {
      sim::Rng local(sd);
      for (int i = 0; i < 250; ++i) {
        const std::uint64_t addr = local.next_below(12) * 32;
        used->insert(addr);
        co_await m.access(cpu,
                          local.chance(0.4) ? AccessType::kStore
                                            : AccessType::kLoad,
                          addr);
        co_await s.delay(local.next_below(40) * kNs);
      }
    }(sim, mem, c, rng.next(), &lines_used));
  }
  sim.run();

  for (const std::uint64_t line : lines_used) {
    int exclusive_like = 0;
    int shared = 0;
    for (std::uint32_t c = 0; c < kCpus; ++c) {
      const LineState st = mem.l1(c, AccessType::kLoad)->probe(line);
      if (st == LineState::kModified || st == LineState::kExclusive) {
        ++exclusive_like;
      } else if (st == LineState::kShared) {
        ++shared;
      }
    }
    EXPECT_LE(exclusive_like, 1);
    if (exclusive_like == 1) {
      EXPECT_EQ(shared, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, CoherenceKindInvariantTest,
    ::testing::Combine(::testing::Values(machine::CoherenceKind::kSnoopy,
                                         machine::CoherenceKind::kDirectory),
                       ::testing::Range(1, 5)));

}  // namespace
}  // namespace merm::memory
