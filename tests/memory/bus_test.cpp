// Bus model tests: occupancy math, FIFO arbitration, contention queueing.
#include "memory/bus.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace merm::memory {
namespace {

// 100 MHz, 8-byte wide, 1 arbitration cycle -> 10 ns per cycle.
Bus make_bus(sim::Simulator& sim) { return Bus(sim, 100e6, 8, 1); }

sim::Process do_transaction(sim::Simulator& sim, Bus& bus, std::uint64_t bytes,
                            sim::Tick start_at, sim::Tick* done_at) {
  co_await sim.delay(start_at);
  co_await bus.transaction(bytes);
  *done_at = sim.now();
}

TEST(BusTest, OccupancyMath) {
  sim::Simulator sim;
  Bus bus = make_bus(sim);
  // arbitration (1) + ceil(64/8)=8 beats = 9 cycles = 90 ns.
  EXPECT_EQ(bus.occupancy(64, 0), 90 * sim::kTicksPerNanosecond);
  // Partial beat rounds up: 1 + ceil(4/8)=1 -> 2 cycles.
  EXPECT_EQ(bus.occupancy(4, 0), 20 * sim::kTicksPerNanosecond);
  // Extra cycles add in.
  EXPECT_EQ(bus.occupancy(0, 5), 60 * sim::kTicksPerNanosecond);
}

TEST(BusTest, SingleTransactionTiming) {
  sim::Simulator sim;
  Bus bus = make_bus(sim);
  sim::Tick done = 0;
  sim.spawn(do_transaction(sim, bus, 64, 0, &done));
  sim.run();
  EXPECT_EQ(done, 90 * sim::kTicksPerNanosecond);
  EXPECT_EQ(bus.transactions.value(), 1u);
  EXPECT_EQ(bus.bytes_transferred.value(), 64u);
  EXPECT_EQ(bus.busy_ticks(), 90 * sim::kTicksPerNanosecond);
}

TEST(BusTest, ContendingTransactionsSerialize) {
  sim::Simulator sim;
  Bus bus = make_bus(sim);
  sim::Tick done_a = 0;
  sim::Tick done_b = 0;
  // Both request at t=0; each takes 90 ns.
  sim.spawn(do_transaction(sim, bus, 64, 0, &done_a));
  sim.spawn(do_transaction(sim, bus, 64, 0, &done_b));
  sim.run();
  EXPECT_EQ(done_a, 90 * sim::kTicksPerNanosecond);
  EXPECT_EQ(done_b, 180 * sim::kTicksPerNanosecond);
  // Second requester waited for the first.
  EXPECT_DOUBLE_EQ(bus.queue_wait_ticks.max(),
                   static_cast<double>(90 * sim::kTicksPerNanosecond));
}

TEST(BusTest, FifoGrantOrder) {
  sim::Simulator sim;
  Bus bus = make_bus(sim);
  std::vector<int> order;
  auto txn = [&](int id, sim::Tick at) -> sim::Process {
    co_await sim.delay(at);
    co_await bus.transaction(8);
    order.push_back(id);
  };
  // Stagger requests while the bus is held by an early long transaction.
  sim.spawn([](sim::Simulator& s, Bus& b) -> sim::Process {
    co_await b.transaction(800);  // long: 1+100 cycles
    (void)s;
  }(sim, bus));
  sim.spawn(txn(1, 10));
  sim.spawn(txn(2, 20));
  sim.spawn(txn(3, 30));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(BusTest, UtilizationFractions) {
  sim::Simulator sim;
  Bus bus = make_bus(sim);
  sim::Tick done = 0;
  sim.spawn(do_transaction(sim, bus, 64, 0, &done));
  sim.run();
  // Fully busy from 0 to 90 ns.
  EXPECT_DOUBLE_EQ(bus.utilization(sim.now()), 1.0);
  EXPECT_NEAR(bus.utilization(sim.now() * 2), 0.5, 1e-9);
}

TEST(BusTest, NonContendingTransactionsDoNotWait) {
  sim::Simulator sim;
  Bus bus = make_bus(sim);
  sim::Tick done_a = 0;
  sim::Tick done_b = 0;
  sim.spawn(do_transaction(sim, bus, 8, 0, &done_a));  // 20 ns
  sim.spawn(do_transaction(sim, bus, 8, 50 * sim::kTicksPerNanosecond,
                           &done_b));
  sim.run();
  EXPECT_EQ(done_a, 20 * sim::kTicksPerNanosecond);
  EXPECT_EQ(done_b, 70 * sim::kTicksPerNanosecond);
  EXPECT_DOUBLE_EQ(bus.queue_wait_ticks.max(), 0.0);
}

}  // namespace
}  // namespace merm::memory
