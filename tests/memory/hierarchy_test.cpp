// Memory hierarchy tests: exact access timing, multi-level walks, write
// policies, snoopy MESI coherence, and randomized coherence invariants.
#include "memory/hierarchy.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace merm::memory {
namespace {

constexpr sim::Tick kNs = sim::kTicksPerNanosecond;

// 100 MHz CPU (10 ns/cycle), tiny L1 (256 B / 32 B lines / 2-way / 1-cycle),
// 100 MHz 8-byte bus with 1 arbitration cycle, DRAM 5 cycles.
machine::NodeParams one_level_node(std::uint32_t cpus = 1) {
  machine::NodeParams p;
  p.cpu_count = cpus;
  p.cpu.frequency_hz = 100e6;
  p.memory.levels = {machine::CacheLevelParams{
      256, 32, 2, 1, machine::WritePolicy::kWriteBack, true}};
  p.memory.bus_frequency_hz = 100e6;
  p.memory.bus_width_bytes = 8;
  p.memory.bus_arbitration_cycles = 1;
  p.memory.dram_access_cycles = 5;
  p.memory.dram_beat_cycles = 1;
  return p;
}

sim::Process access_once(sim::Simulator& sim, MemoryHierarchy& mem,
                         std::uint32_t cpu, AccessType type,
                         std::uint64_t addr, sim::Tick* latency) {
  const sim::Tick start = sim.now();
  co_await mem.access(cpu, type, addr);
  *latency = sim.now() - start;
}

sim::Tick timed_access(sim::Simulator& sim, MemoryHierarchy& mem,
                       std::uint32_t cpu, AccessType type,
                       std::uint64_t addr) {
  sim::Tick latency = 0;
  sim.spawn(access_once(sim, mem, cpu, type, addr, &latency));
  sim.run();
  return latency;
}

TEST(HierarchyTest, ColdLoadMissGoesToDram) {
  sim::Simulator sim;
  MemoryHierarchy mem(sim, one_level_node());
  // L1 lookup (10 ns) + bus txn: (1 arb + 5 dram + 4 beats) * 10 ns = 100 ns.
  EXPECT_EQ(timed_access(sim, mem, 0, AccessType::kLoad, 0x1000), 110 * kNs);
  EXPECT_EQ(mem.dram_accesses.value(), 1u);
  EXPECT_EQ(mem.l1(0, AccessType::kLoad)->misses.value(), 1u);
}

TEST(HierarchyTest, WarmLoadHitsInOneCycle) {
  sim::Simulator sim;
  MemoryHierarchy mem(sim, one_level_node());
  timed_access(sim, mem, 0, AccessType::kLoad, 0x1000);
  EXPECT_EQ(timed_access(sim, mem, 0, AccessType::kLoad, 0x1004), 10 * kNs);
  EXPECT_EQ(mem.l1(0, AccessType::kLoad)->hits.value(), 1u);
}

TEST(HierarchyTest, StoreHitMarksLineModified) {
  sim::Simulator sim;
  MemoryHierarchy mem(sim, one_level_node());
  timed_access(sim, mem, 0, AccessType::kLoad, 0x1000);
  EXPECT_EQ(timed_access(sim, mem, 0, AccessType::kStore, 0x1000), 10 * kNs);
  EXPECT_EQ(mem.l1(0, AccessType::kLoad)->probe(0x1000),
            LineState::kModified);
}

TEST(HierarchyTest, DirtyEvictionPaysWritebackOnBus) {
  sim::Simulator sim;
  MemoryHierarchy mem(sim, one_level_node());
  // Set stride = 4 sets * 32 B = 128 B; fill both ways of set 0 dirty.
  timed_access(sim, mem, 0, AccessType::kStore, 0x000);
  timed_access(sim, mem, 0, AccessType::kStore, 0x080);
  // Third line in set 0 evicts a dirty victim: miss (110 ns) + writeback
  // bus txn (1 arb + 4 beats = 50 ns).
  EXPECT_EQ(timed_access(sim, mem, 0, AccessType::kLoad, 0x100), 160 * kNs);
  EXPECT_EQ(mem.l1(0, AccessType::kLoad)->writebacks.value(), 1u);
}

TEST(HierarchyTest, CachelessNodeAlwaysPaysBusAndDram) {
  machine::NodeParams p = one_level_node();
  p.memory.levels.clear();
  sim::Simulator sim;
  MemoryHierarchy mem(sim, p);
  // (1 arb + 5 dram + 1 beat) * 10 ns = 70 ns, every time.
  EXPECT_EQ(timed_access(sim, mem, 0, AccessType::kLoad, 0x1000), 70 * kNs);
  EXPECT_EQ(timed_access(sim, mem, 0, AccessType::kLoad, 0x1000), 70 * kNs);
  EXPECT_EQ(mem.dram_accesses.value(), 2u);
  EXPECT_EQ(mem.l1(0, AccessType::kLoad), nullptr);
}

TEST(HierarchyTest, TwoLevelWalkHitsInL2) {
  machine::NodeParams p = one_level_node();
  p.memory.levels.push_back(machine::CacheLevelParams{
      4096, 32, 4, 4, machine::WritePolicy::kWriteBack, true});
  sim::Simulator sim;
  MemoryHierarchy mem(sim, p);
  // Cold: L1 (10) + L2 lookup (40) + dram (100) = 150 ns.
  EXPECT_EQ(timed_access(sim, mem, 0, AccessType::kLoad, 0x000), 150 * kNs);
  // Evict 0x000 from tiny L1 via set-0 conflicts; it stays in L2.
  timed_access(sim, mem, 0, AccessType::kLoad, 0x080);
  timed_access(sim, mem, 0, AccessType::kLoad, 0x100);
  ASSERT_FALSE(mem.l1(0, AccessType::kLoad)->contains(0x000));
  ASSERT_TRUE(mem.shared_level(1)->contains(0x000));
  // L2 hit: L1 lookup (10) + L2 (40) = 50 ns, no DRAM.
  const auto dram_before = mem.dram_accesses.value();
  EXPECT_EQ(timed_access(sim, mem, 0, AccessType::kLoad, 0x000), 50 * kNs);
  EXPECT_EQ(mem.dram_accesses.value(), dram_before);
}

TEST(HierarchyTest, SplitL1SeparatesCodeAndData) {
  machine::NodeParams p = one_level_node();
  p.memory.split_l1 = true;
  sim::Simulator sim;
  MemoryHierarchy mem(sim, p);
  timed_access(sim, mem, 0, AccessType::kIFetch, 0x1000);
  timed_access(sim, mem, 0, AccessType::kLoad, 0x2000);
  EXPECT_TRUE(mem.l1(0, AccessType::kIFetch)->contains(0x1000));
  EXPECT_FALSE(mem.l1(0, AccessType::kIFetch)->contains(0x2000));
  EXPECT_TRUE(mem.l1(0, AccessType::kLoad)->contains(0x2000));
  EXPECT_NE(mem.l1(0, AccessType::kIFetch), mem.l1(0, AccessType::kLoad));
}

TEST(HierarchyTest, WriteThroughStorePropagatesToBus) {
  machine::NodeParams p = one_level_node();
  p.memory.levels[0].write_policy = machine::WritePolicy::kWriteThrough;
  sim::Simulator sim;
  MemoryHierarchy mem(sim, p);
  timed_access(sim, mem, 0, AccessType::kLoad, 0x1000);
  const auto bus_before = mem.bus().transactions.value();
  // Store hit: L1 (10 ns) + word write on bus (1 arb + 1 beat = 20 ns).
  EXPECT_EQ(timed_access(sim, mem, 0, AccessType::kStore, 0x1000), 30 * kNs);
  EXPECT_EQ(mem.bus().transactions.value(), bus_before + 1);
  // Line stays clean.
  EXPECT_NE(mem.l1(0, AccessType::kLoad)->probe(0x1000),
            LineState::kModified);
}

// -- coherence (two CPUs, snoopy MESI over the node bus) --

TEST(CoherenceTest, ReadSharingDowngradesToShared) {
  sim::Simulator sim;
  MemoryHierarchy mem(sim, one_level_node(2));
  ASSERT_TRUE(mem.coherent());
  timed_access(sim, mem, 0, AccessType::kLoad, 0x1000);
  EXPECT_EQ(mem.l1(0, AccessType::kLoad)->probe(0x1000),
            LineState::kExclusive);
  timed_access(sim, mem, 1, AccessType::kLoad, 0x1000);
  EXPECT_EQ(mem.l1(0, AccessType::kLoad)->probe(0x1000), LineState::kShared);
  EXPECT_EQ(mem.l1(1, AccessType::kLoad)->probe(0x1000), LineState::kShared);
}

TEST(CoherenceTest, PeerSupplyAvoidsDram) {
  sim::Simulator sim;
  MemoryHierarchy mem(sim, one_level_node(2));
  timed_access(sim, mem, 0, AccessType::kLoad, 0x1000);
  const auto dram_before = mem.dram_accesses.value();
  // Cache-to-cache: L1 lookup (10) + line transfer (1 arb + 4 beats = 50).
  EXPECT_EQ(timed_access(sim, mem, 1, AccessType::kLoad, 0x1000), 60 * kNs);
  EXPECT_EQ(mem.dram_accesses.value(), dram_before);
}

TEST(CoherenceTest, WriteToSharedInvalidatesPeers) {
  sim::Simulator sim;
  MemoryHierarchy mem(sim, one_level_node(2));
  timed_access(sim, mem, 0, AccessType::kLoad, 0x1000);
  timed_access(sim, mem, 1, AccessType::kLoad, 0x1000);
  // Upgrade: L1 hit (10) + invalidate broadcast (1 arb cycle = 10 ns).
  EXPECT_EQ(timed_access(sim, mem, 0, AccessType::kStore, 0x1000), 20 * kNs);
  EXPECT_EQ(mem.l1(0, AccessType::kLoad)->probe(0x1000),
            LineState::kModified);
  EXPECT_EQ(mem.l1(1, AccessType::kLoad)->probe(0x1000),
            LineState::kInvalid);
}

TEST(CoherenceTest, ReadOfDirtyPeerLineFlushes) {
  sim::Simulator sim;
  MemoryHierarchy mem(sim, one_level_node(2));
  timed_access(sim, mem, 0, AccessType::kStore, 0x1000);  // cpu0 holds M
  timed_access(sim, mem, 1, AccessType::kLoad, 0x1000);
  EXPECT_EQ(mem.l1(0, AccessType::kLoad)->probe(0x1000), LineState::kShared);
  EXPECT_EQ(mem.l1(1, AccessType::kLoad)->probe(0x1000), LineState::kShared);
}

TEST(CoherenceTest, WriteMissStealsOwnership) {
  sim::Simulator sim;
  MemoryHierarchy mem(sim, one_level_node(2));
  timed_access(sim, mem, 0, AccessType::kStore, 0x1000);  // cpu0: M
  timed_access(sim, mem, 1, AccessType::kStore, 0x1000);  // cpu1 takes over
  EXPECT_EQ(mem.l1(0, AccessType::kLoad)->probe(0x1000),
            LineState::kInvalid);
  EXPECT_EQ(mem.l1(1, AccessType::kLoad)->probe(0x1000),
            LineState::kModified);
}

TEST(CoherenceTest, UniprocessorNodeIsNotCoherent) {
  sim::Simulator sim;
  MemoryHierarchy mem(sim, one_level_node(1));
  EXPECT_FALSE(mem.coherent());
}

TEST(CoherenceTest, ForceCoherenceFlag) {
  machine::NodeParams p = one_level_node(1);
  p.force_coherence = true;
  sim::Simulator sim;
  MemoryHierarchy mem(sim, p);
  EXPECT_TRUE(mem.coherent());
}

// Property: after any interleaving of accesses from multiple CPUs, the MESI
// invariant holds per line — at most one M/E copy, and an M/E copy excludes
// any other copies.
class CoherenceInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(CoherenceInvariantTest, MesiInvariantHoldsUnderRandomTraffic) {
  const int seed = GetParam();
  constexpr std::uint32_t kCpus = 3;
  sim::Simulator sim;
  MemoryHierarchy mem(sim, one_level_node(kCpus));
  sim::Rng rng(static_cast<std::uint64_t>(seed));
  std::set<std::uint64_t> lines_used;

  auto worker = [&](std::uint32_t cpu) -> sim::Process {
    sim::Rng local(rng.next());
    for (int i = 0; i < 300; ++i) {
      const std::uint64_t addr = local.next_below(16) * 32;  // 16 hot lines
      const auto type = local.chance(0.35) ? AccessType::kStore
                                           : AccessType::kLoad;
      lines_used.insert(addr);
      co_await mem.access(cpu, type, addr);
      co_await sim.delay(local.next_below(50) * kNs);
    }
  };
  for (std::uint32_t c = 0; c < kCpus; ++c) sim.spawn(worker(c));
  sim.run();

  for (const std::uint64_t line : lines_used) {
    int modified = 0;
    int exclusive = 0;
    int shared = 0;
    for (std::uint32_t c = 0; c < kCpus; ++c) {
      switch (mem.l1(c, AccessType::kLoad)->probe(line)) {
        case LineState::kModified:
          ++modified;
          break;
        case LineState::kExclusive:
          ++exclusive;
          break;
        case LineState::kShared:
          ++shared;
          break;
        case LineState::kInvalid:
          break;
      }
    }
    EXPECT_LE(modified + exclusive, 1) << "line 0x" << std::hex << line;
    if (modified + exclusive == 1) {
      EXPECT_EQ(shared, 0) << "line 0x" << std::hex << line;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceInvariantTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace merm::memory
