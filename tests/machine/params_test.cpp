// Machine parameter and preset tests.
#include "machine/params.hpp"

#include <gtest/gtest.h>

namespace merm::machine {
namespace {

using trace::DataType;
using trace::OpCode;

TEST(CpuParamsTest, DefaultsAreSaneAndComplete) {
  CpuParams cpu;
  for (int c = 0; c < trace::kOpCodeCount; ++c) {
    const auto code = static_cast<OpCode>(c);
    if (!trace::is_computational(code)) continue;
    for (int t = 0; t < trace::kDataTypeCount; ++t) {
      EXPECT_GE(cpu.cost(code, static_cast<DataType>(t)), 1u)
          << trace::to_string(code);
    }
  }
  // Divide slower than multiply slower than add.
  EXPECT_GT(cpu.cost(OpCode::kDiv, DataType::kInt32),
            cpu.cost(OpCode::kMul, DataType::kInt32));
  EXPECT_GT(cpu.cost(OpCode::kMul, DataType::kInt32),
            cpu.cost(OpCode::kAdd, DataType::kInt32));
}

TEST(CpuParamsTest, SetCostAffectsOneEntry) {
  CpuParams cpu;
  cpu.set_cost(OpCode::kMul, DataType::kFloat, 99);
  EXPECT_EQ(cpu.cost(OpCode::kMul, DataType::kFloat), 99u);
  EXPECT_NE(cpu.cost(OpCode::kMul, DataType::kInt32), 99u);
}

TEST(CacheLevelParamsTest, SetComputation) {
  CacheLevelParams c;
  c.size_bytes = 32 * 1024;
  c.line_bytes = 64;
  c.associativity = 8;
  EXPECT_EQ(c.sets(), 64u);
  c.associativity = 0;  // fully associative
  EXPECT_EQ(c.sets(), 1u);
}

TEST(TopologyParamsTest, NodeCounts) {
  TopologyParams t;
  t.kind = TopologyKind::kMesh2D;
  t.dims = {4, 3};
  EXPECT_EQ(t.node_count(), 12u);
  t.kind = TopologyKind::kHypercube;
  t.dims = {16, 1};
  EXPECT_EQ(t.node_count(), 16u);
  t.kind = TopologyKind::kRing;
  t.dims = {5, 99};
  EXPECT_EQ(t.node_count(), 5u);
}

TEST(PresetsTest, PowerPc601MatchesPaperConfiguration) {
  const MachineParams m = presets::powerpc601_node();
  EXPECT_EQ(m.node_count(), 1u);
  EXPECT_EQ(m.node.cpu_count, 1u);
  EXPECT_DOUBLE_EQ(m.node.cpu.frequency_hz, 66e6);
  // "two levels of cache" (Section 6).
  ASSERT_EQ(m.node.memory.levels.size(), 2u);
  EXPECT_EQ(m.node.memory.levels[0].size_bytes, 32u * 1024);
  EXPECT_EQ(m.node.memory.levels[0].associativity, 8u);
  EXPECT_EQ(m.node.memory.levels[1].size_bytes, 256u * 1024);
}

TEST(PresetsTest, T805IsACachelessMeshMulticomputer) {
  const MachineParams m = presets::t805_multicomputer(4, 4);
  EXPECT_EQ(m.node_count(), 16u);
  EXPECT_TRUE(m.node.memory.levels.empty());
  EXPECT_DOUBLE_EQ(m.node.cpu.frequency_hz, 20e6);
  EXPECT_EQ(m.topology.kind, TopologyKind::kMesh2D);
  EXPECT_EQ(m.router.switching, Switching::kStoreAndForward);
}

TEST(PresetsTest, Ipsc860IsACutThroughHypercube) {
  const MachineParams m = presets::ipsc860_hypercube(8);
  EXPECT_EQ(m.node_count(), 8u);
  EXPECT_EQ(m.topology.kind, TopologyKind::kHypercube);
  EXPECT_EQ(m.router.switching, Switching::kVirtualCutThrough);
  ASSERT_EQ(m.node.memory.levels.size(), 1u);
  EXPECT_EQ(m.node.memory.levels[0].size_bytes, 8u * 1024);
  EXPECT_DOUBLE_EQ(m.node.cpu.frequency_hz, 40e6);
}

TEST(PresetsTest, GenericRiscHasSplitL1Torus) {
  const MachineParams m = presets::generic_risc(2, 2);
  EXPECT_TRUE(m.node.memory.split_l1);
  EXPECT_EQ(m.topology.kind, TopologyKind::kTorus2D);
  EXPECT_EQ(m.router.switching, Switching::kWormhole);
  EXPECT_EQ(m.node_count(), 4u);
}

}  // namespace
}  // namespace merm::machine
