// Config parser tests: round trips, overrides, and error reporting.
#include "machine/config.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace merm::machine {
namespace {

using trace::DataType;
using trace::OpCode;

TEST(ConfigTest, RoundTripsEveryPreset) {
  for (const MachineParams& preset :
       {presets::powerpc601_node(), presets::t805_multicomputer(4, 4),
        presets::generic_risc(2, 4), presets::ipsc860_hypercube(8)}) {
    const std::string text = write_config_string(preset);
    const MachineParams back = parse_config_string(text);
    EXPECT_EQ(back.name, preset.name);
    EXPECT_EQ(back.node.cpu_count, preset.node.cpu_count);
    EXPECT_DOUBLE_EQ(back.node.cpu.frequency_hz,
                     preset.node.cpu.frequency_hz);
    EXPECT_EQ(back.node.cpu.cost_table, preset.node.cpu.cost_table);
    ASSERT_EQ(back.node.memory.levels.size(), preset.node.memory.levels.size());
    for (std::size_t i = 0; i < preset.node.memory.levels.size(); ++i) {
      EXPECT_EQ(back.node.memory.levels[i].size_bytes,
                preset.node.memory.levels[i].size_bytes);
      EXPECT_EQ(back.node.memory.levels[i].associativity,
                preset.node.memory.levels[i].associativity);
      EXPECT_EQ(back.node.memory.levels[i].write_policy,
                preset.node.memory.levels[i].write_policy);
    }
    EXPECT_EQ(back.topology.kind, preset.topology.kind);
    EXPECT_EQ(back.topology.dims, preset.topology.dims);
    EXPECT_EQ(back.router.switching, preset.router.switching);
    EXPECT_EQ(back.router.max_packet_bytes, preset.router.max_packet_bytes);
    EXPECT_DOUBLE_EQ(back.link.bandwidth_bytes_per_s,
                     preset.link.bandwidth_bytes_per_s);
    EXPECT_EQ(back.link.propagation_delay, preset.link.propagation_delay);
    EXPECT_EQ(back.nic.send_setup, preset.nic.send_setup);
  }
}

TEST(ConfigTest, OverridesOnTopOfBase) {
  const MachineParams base = presets::generic_risc(4, 4);
  const MachineParams m = parse_config_string(
      "name = tweaked\n"
      "[cache.0]\n"
      "size_bytes = 65536\n"
      "[router]\n"
      "switching = store_and_forward\n",
      base);
  EXPECT_EQ(m.name, "tweaked");
  EXPECT_EQ(m.node.memory.levels[0].size_bytes, 65536u);
  EXPECT_EQ(m.router.switching, Switching::kStoreAndForward);
  // Untouched fields keep base values.
  EXPECT_EQ(m.topology.kind, base.topology.kind);
  EXPECT_EQ(m.node.memory.levels[1].size_bytes,
            base.node.memory.levels[1].size_bytes);
}

TEST(ConfigTest, CostKeysApplyPerTypeAndAllTypes) {
  const MachineParams m = parse_config_string(
      "[cpu]\n"
      "cost.mul = 7\n"
      "cost.div.f64 = 40\n");
  EXPECT_EQ(m.node.cpu.cost(OpCode::kMul, DataType::kInt32), 7u);
  EXPECT_EQ(m.node.cpu.cost(OpCode::kMul, DataType::kDouble), 7u);
  EXPECT_EQ(m.node.cpu.cost(OpCode::kDiv, DataType::kDouble), 40u);
}

TEST(ConfigTest, CacheSectionGrowsLevels) {
  const MachineParams m = parse_config_string(
      "[cache.0]\nsize_bytes = 8192\n"
      "[cache.1]\nsize_bytes = 131072\nhit_cycles = 9\n");
  ASSERT_EQ(m.node.memory.levels.size(), 2u);
  EXPECT_EQ(m.node.memory.levels[1].hit_cycles, 9u);
}

TEST(ConfigTest, CommentsAndWhitespaceIgnored) {
  const MachineParams m = parse_config_string(
      "; leading comment\n"
      "name = spacey   # trailing comment\n"
      "\n"
      "  [node]  \n"
      "  cpu_count = 2  ; two cpus\n");
  EXPECT_EQ(m.name, "spacey");
  EXPECT_EQ(m.node.cpu_count, 2u);
}

TEST(ConfigTest, ErrorsCarryLineNumbers) {
  try {
    parse_config_string("name = x\n[cpu]\nbogus_key = 3\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(ConfigTest, RejectsUnknownSectionsKeysAndValues) {
  EXPECT_THROW(parse_config_string("[warp_drive]\nx = 1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_config_string("[topology]\nkind = moebius\n"),
               std::runtime_error);
  EXPECT_THROW(parse_config_string("[router]\nswitching = psychic\n"),
               std::runtime_error);
  EXPECT_THROW(parse_config_string("[node]\ncpu_count = banana\n"),
               std::runtime_error);
  EXPECT_THROW(parse_config_string("keyword_without_equals\n"),
               std::runtime_error);
  EXPECT_THROW(parse_config_string("[cpu\nx = 1\n"), std::runtime_error);
}

}  // namespace
}  // namespace merm::machine
