// Config parser tests: round trips, overrides, and error reporting.
#include "machine/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace merm::machine {
namespace {

using trace::DataType;
using trace::OpCode;

TEST(ConfigTest, RoundTripsEveryPreset) {
  for (const MachineParams& preset :
       {presets::powerpc601_node(), presets::t805_multicomputer(4, 4),
        presets::generic_risc(2, 4), presets::ipsc860_hypercube(8)}) {
    const std::string text = write_config_string(preset);
    const MachineParams back = parse_config_string(text);
    EXPECT_EQ(back.name, preset.name);
    EXPECT_EQ(back.node.cpu_count, preset.node.cpu_count);
    EXPECT_DOUBLE_EQ(back.node.cpu.frequency_hz,
                     preset.node.cpu.frequency_hz);
    EXPECT_EQ(back.node.cpu.cost_table, preset.node.cpu.cost_table);
    ASSERT_EQ(back.node.memory.levels.size(), preset.node.memory.levels.size());
    for (std::size_t i = 0; i < preset.node.memory.levels.size(); ++i) {
      EXPECT_EQ(back.node.memory.levels[i].size_bytes,
                preset.node.memory.levels[i].size_bytes);
      EXPECT_EQ(back.node.memory.levels[i].associativity,
                preset.node.memory.levels[i].associativity);
      EXPECT_EQ(back.node.memory.levels[i].write_policy,
                preset.node.memory.levels[i].write_policy);
    }
    EXPECT_EQ(back.topology.kind, preset.topology.kind);
    EXPECT_EQ(back.topology.dims, preset.topology.dims);
    EXPECT_EQ(back.router.switching, preset.router.switching);
    EXPECT_EQ(back.router.max_packet_bytes, preset.router.max_packet_bytes);
    EXPECT_DOUBLE_EQ(back.link.bandwidth_bytes_per_s,
                     preset.link.bandwidth_bytes_per_s);
    EXPECT_EQ(back.link.propagation_delay, preset.link.propagation_delay);
    EXPECT_EQ(back.nic.send_setup, preset.nic.send_setup);
  }
}

TEST(ConfigTest, OverridesOnTopOfBase) {
  const MachineParams base = presets::generic_risc(4, 4);
  const MachineParams m = parse_config_string(
      "name = tweaked\n"
      "[cache.0]\n"
      "size_bytes = 65536\n"
      "[router]\n"
      "switching = store_and_forward\n",
      base);
  EXPECT_EQ(m.name, "tweaked");
  EXPECT_EQ(m.node.memory.levels[0].size_bytes, 65536u);
  EXPECT_EQ(m.router.switching, Switching::kStoreAndForward);
  // Untouched fields keep base values.
  EXPECT_EQ(m.topology.kind, base.topology.kind);
  EXPECT_EQ(m.node.memory.levels[1].size_bytes,
            base.node.memory.levels[1].size_bytes);
}

TEST(ConfigTest, CostKeysApplyPerTypeAndAllTypes) {
  const MachineParams m = parse_config_string(
      "[cpu]\n"
      "cost.mul = 7\n"
      "cost.div.f64 = 40\n");
  EXPECT_EQ(m.node.cpu.cost(OpCode::kMul, DataType::kInt32), 7u);
  EXPECT_EQ(m.node.cpu.cost(OpCode::kMul, DataType::kDouble), 7u);
  EXPECT_EQ(m.node.cpu.cost(OpCode::kDiv, DataType::kDouble), 40u);
}

TEST(ConfigTest, CacheSectionGrowsLevels) {
  const MachineParams m = parse_config_string(
      "[cache.0]\nsize_bytes = 8192\n"
      "[cache.1]\nsize_bytes = 131072\nhit_cycles = 9\n");
  ASSERT_EQ(m.node.memory.levels.size(), 2u);
  EXPECT_EQ(m.node.memory.levels[1].hit_cycles, 9u);
}

TEST(ConfigTest, CommentsAndWhitespaceIgnored) {
  const MachineParams m = parse_config_string(
      "; leading comment\n"
      "name = spacey   # trailing comment\n"
      "\n"
      "  [node]  \n"
      "  cpu_count = 2  ; two cpus\n");
  EXPECT_EQ(m.name, "spacey");
  EXPECT_EQ(m.node.cpu_count, 2u);
}

TEST(ConfigTest, ErrorsCarryLineNumbers) {
  try {
    parse_config_string("name = x\n[cpu]\nbogus_key = 3\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(ConfigTest, RejectsUnknownSectionsKeysAndValues) {
  EXPECT_THROW(parse_config_string("[warp_drive]\nx = 1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_config_string("[topology]\nkind = moebius\n"),
               std::runtime_error);
  EXPECT_THROW(parse_config_string("[router]\nswitching = psychic\n"),
               std::runtime_error);
  EXPECT_THROW(parse_config_string("[node]\ncpu_count = banana\n"),
               std::runtime_error);
  EXPECT_THROW(parse_config_string("keyword_without_equals\n"),
               std::runtime_error);
  EXPECT_THROW(parse_config_string("[cpu\nx = 1\n"), std::runtime_error);
}

TEST(ConfigTest, ParsesFaultSections) {
  const MachineParams m = parse_config_string(
      "[fault]\n"
      "enabled = true\n"
      "seed = 7\n"
      "drop_probability = 0.25\n"
      "ack_timeout_us = 100\n"
      "max_retries = 3\n"
      "[fault.link.0]\n"
      "from = 1\n"
      "to = 2\n"
      "down_at_us = 50\n"
      "up_at_us = 500\n"
      "[fault.node.0]\n"
      "node = 3\n"
      "down_at_us = 10\n");
  EXPECT_TRUE(m.fault.enabled);
  EXPECT_EQ(m.fault.seed, 7u);
  EXPECT_DOUBLE_EQ(m.fault.drop_probability, 0.25);
  EXPECT_EQ(m.fault.ack_timeout, 100 * sim::kTicksPerMicrosecond);
  EXPECT_EQ(m.fault.max_retries, 3u);
  ASSERT_EQ(m.fault.link_events.size(), 1u);
  EXPECT_EQ(m.fault.link_events[0].a, 1);
  EXPECT_EQ(m.fault.link_events[0].b, 2);
  EXPECT_EQ(m.fault.link_events[0].down_at, 50 * sim::kTicksPerMicrosecond);
  EXPECT_EQ(m.fault.link_events[0].up_at, 500 * sim::kTicksPerMicrosecond);
  ASSERT_EQ(m.fault.node_events.size(), 1u);
  EXPECT_EQ(m.fault.node_events[0].node, 3);
  EXPECT_EQ(m.fault.node_events[0].up_at, sim::kTickMax);  // never repaired
}

TEST(ConfigTest, FaultParamsSurviveARoundTrip) {
  MachineParams m = presets::t805_multicomputer(2, 2);
  m.fault.enabled = true;
  m.fault.seed = 99;
  m.fault.drop_probability = 0.125;
  m.fault.corrupt_probability = 0.5;
  m.fault.link_events.push_back(
      {.a = 0, .b = 1, .down_at = 1000, .up_at = 2000});
  m.fault.node_events.push_back({.node = 2, .down_at = 3000});

  std::ostringstream out;
  write_config(out, m);
  const MachineParams back = parse_config_string(out.str());
  EXPECT_TRUE(back.fault.enabled);
  EXPECT_EQ(back.fault.seed, 99u);
  EXPECT_DOUBLE_EQ(back.fault.drop_probability, 0.125);
  EXPECT_DOUBLE_EQ(back.fault.corrupt_probability, 0.5);
  ASSERT_EQ(back.fault.link_events.size(), 1u);
  ASSERT_EQ(back.fault.node_events.size(), 1u);
  EXPECT_EQ(back.fault.node_events[0].up_at, sim::kTickMax);
}

TEST(ConfigTest, RejectsBadFaultValues) {
  EXPECT_THROW(parse_config_string("[fault]\ndrop_probability = 1.5\n"),
               std::runtime_error);
  EXPECT_THROW(parse_config_string("[fault]\ndrop_probability = -0.1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_config_string("[fault]\nwarp_field = 1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_config_string("[fault.link.0]\nwormhole = 1\n"),
               std::runtime_error);
}

TEST(ConfigTest, FileLoaderReportsPathAndLine) {
  const std::string path = "config_test_tmp.cfg";
  {
    std::ofstream out(path);
    out << "[node]\n"
        << "cpu_count = 2\n"
        << "flux_capacitor = 1\n";
  }
  try {
    (void)parse_config_file(path);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path + ":3:"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());

  try {
    (void)parse_config_file("no_such_file.cfg");
    FAIL() << "expected a missing-file error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

}  // namespace
}  // namespace merm::machine
