// NIC fault tolerance: ack-timeout retransmission with exponential backoff,
// retry exhaustion, duplicate suppression plumbing, reroute accounting, and
// the hang diagnostic for receives nobody will ever match.
#include <gtest/gtest.h>

#include "machine/params.hpp"
#include "node/comm_node.hpp"
#include "node/machine.hpp"
#include "sim/simulator.hpp"

namespace merm::node {
namespace {

constexpr sim::Tick kUs = sim::kTicksPerMicrosecond;

// The comm_node_test 4-ring with easy NIC numbers, plus a fault config.
machine::MachineParams faulty_machine(std::uint32_t nodes = 4) {
  machine::MachineParams m = machine::presets::generic_risc(nodes, 1);
  m.topology.kind = machine::TopologyKind::kRing;
  m.topology.dims = {nodes, 1};
  m.nic.send_setup = kUs;
  m.nic.recv_setup = kUs;
  m.nic.copy_bytes_per_s = 1e9;
  m.fault.enabled = true;
  m.fault.ack_timeout = 100 * kUs;
  m.fault.retry_backoff = 50 * kUs;
  m.fault.max_retries = 10;
  return m;
}

struct Rig {
  sim::Simulator sim;
  Machine machine;

  explicit Rig(machine::MachineParams params) : machine(sim, params) {}
};

TEST(FaultToleranceTest, SendRetriesUntilNodeRepaired) {
  machine::MachineParams params = faulty_machine();
  params.fault.node_events.push_back(
      {.node = 1, .down_at = 0, .up_at = 2000 * kUs});
  Rig rig(std::move(params));

  sim::Tick send_done = 0;
  rig.sim.spawn([](Rig& r, sim::Tick* out) -> sim::Process {
    co_await r.machine.comm_node(0).op_send(1, 64, 3);
    *out = r.sim.now();
  }(rig, &send_done));
  rig.sim.spawn([](Rig& r) -> sim::Process {
    co_await r.machine.comm_node(1).op_recv(0, 3);
  }(rig));
  rig.sim.run();

  // The send kept retransmitting through the outage and completed after the
  // repair — fault tolerance, not silent loss.
  EXPECT_GT(send_done, 2000 * kUs);
  EXPECT_GT(rig.machine.comm_node(0).retries.value(), 0u);
  EXPECT_GT(rig.machine.comm_node(0).timeouts.value(), 0u);
  EXPECT_GT(rig.machine.comm_node(0).msg_drops.value(), 0u);
  EXPECT_EQ(rig.sim.live_processes(), 0u);
}

TEST(FaultToleranceTest, SendRetryExhaustionThrowsStructuredError) {
  machine::MachineParams params = faulty_machine();
  params.fault.max_retries = 2;
  params.fault.ack_timeout = 50 * kUs;
  params.fault.node_events.push_back({.node = 1, .down_at = 0});  // forever
  Rig rig(std::move(params));

  rig.sim.spawn([](Rig& r) -> sim::Process {
    co_await r.machine.comm_node(0).op_send(1, 64, 9);
  }(rig));
  try {
    rig.sim.run();
    FAIL() << "expected RetryExhaustedError";
  } catch (const RetryExhaustedError& e) {
    EXPECT_EQ(e.node(), 0);
    EXPECT_EQ(e.peer(), 1);
    EXPECT_EQ(e.tag(), 9);
    EXPECT_EQ(e.attempts(), 3u);  // original + max_retries retransmissions
  }
}

TEST(FaultToleranceTest, AsendExhaustionCountsFailureWithoutThrowing) {
  machine::MachineParams params = faulty_machine();
  params.fault.max_retries = 3;
  params.fault.node_events.push_back({.node = 1, .down_at = 0});  // forever
  Rig rig(std::move(params));

  rig.sim.spawn([](Rig& r) -> sim::Process {
    co_await r.machine.comm_node(0).op_asend(1, 64, 5);
  }(rig));
  rig.sim.run();  // must not throw: asend loss is observed, counted, dropped

  EXPECT_EQ(rig.machine.comm_node(0).send_failures.value(), 1u);
  EXPECT_EQ(rig.machine.comm_node(0).msg_drops.value(), 4u);  // 1 + 3 retries
  EXPECT_EQ(rig.machine.comm_node(1).unclaimed_messages(), 0u);
}

TEST(FaultToleranceTest, SendDetoursAroundDeadLinkAndCountsReroutes) {
  machine::MachineParams params = faulty_machine();
  params.fault.link_events.push_back({.a = 0, .b = 1, .down_at = 0});
  Rig rig(std::move(params));

  sim::Tick send_done = 0;
  rig.sim.spawn([](Rig& r, sim::Tick* out) -> sim::Process {
    co_await r.machine.comm_node(0).op_send(1, 64, 3);
    *out = r.sim.now();
  }(rig, &send_done));
  rig.sim.spawn([](Rig& r) -> sim::Process {
    co_await r.machine.comm_node(1).op_recv(0, 3);
  }(rig));
  rig.sim.run();

  // Delivered the long way around the ring on the first attempt: detours
  // are free of retransmissions.
  EXPECT_GT(send_done, 0u);
  EXPECT_GT(rig.machine.comm_node(0).reroutes.value(), 0u);
  EXPECT_EQ(rig.machine.comm_node(0).timeouts.value(), 0u);
  EXPECT_EQ(rig.machine.comm_node(0).msg_drops.value(), 0u);
}

TEST(FaultToleranceTest, SyncSendsSurviveHeavyRandomLoss) {
  machine::MachineParams params = faulty_machine(2);
  params.fault.drop_probability = 0.4;
  params.fault.seed = 1234;
  Rig rig(std::move(params));

  rig.sim.spawn([](Rig& r) -> sim::Process {
    for (int i = 0; i < 20; ++i) {
      co_await r.machine.comm_node(0).op_send(1, 256, i);
    }
  }(rig));
  rig.sim.spawn([](Rig& r) -> sim::Process {
    for (int i = 0; i < 20; ++i) {
      co_await r.machine.comm_node(1).op_recv(0, i);
    }
  }(rig));
  rig.sim.run();

  // Every rendezvous completed despite the loss; the retransmission and
  // drop counters show the protocol actually worked for it.
  EXPECT_EQ(rig.sim.live_processes(), 0u);
  EXPECT_GT(rig.machine.comm_node(0).retries.value(), 0u);
  EXPECT_GT(rig.machine.comm_node(0).msg_drops.value() +
                rig.machine.comm_node(1).msg_drops.value(),
            0u);
}

TEST(FaultToleranceTest, MismatchedTagRecvShowsUpInHangDiagnostic) {
  // No fault injection: the hang diagnostic covers perfect interconnects too
  // (the classic silently-hanging mismatched-tag workload).
  machine::MachineParams params = faulty_machine();
  params.fault = machine::FaultParams{};
  Rig rig(std::move(params));

  rig.sim.spawn([](Rig& r) -> sim::Process {
    co_await r.machine.comm_node(0).op_asend(1, 64, 7);
  }(rig));
  rig.sim.spawn([](Rig& r) -> sim::Process {
    co_await r.machine.comm_node(1).op_recv(0, 99);  // wrong tag: never matches
  }(rig));
  rig.sim.run();

  ASSERT_GT(rig.sim.live_processes(), 0u);
  const std::string diag = rig.sim.hang_diagnostic();
  EXPECT_NE(diag.find("simulation hang"), std::string::npos) << diag;
  EXPECT_NE(diag.find("node 1: recv from 0 tag=99"), std::string::npos)
      << diag;
}

TEST(FaultToleranceTest, BlockedSyncSendShowsUpInHangDiagnostic) {
  machine::MachineParams params = faulty_machine();
  params.fault = machine::FaultParams{};
  Rig rig(std::move(params));

  rig.sim.spawn([](Rig& r) -> sim::Process {
    co_await r.machine.comm_node(2).op_send(3, 128, 11);  // nobody receives
  }(rig));
  rig.sim.run();

  const std::string diag = rig.sim.hang_diagnostic();
  EXPECT_NE(diag.find("node 2: send to 3 tag=11 (128 bytes)"),
            std::string::npos)
      << diag;
}

}  // namespace
}  // namespace merm::node
