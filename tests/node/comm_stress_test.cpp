// Message-layer stress: a randomized storm of tagged messages between all
// node pairs must be delivered exactly once to a matching receive, with no
// blocked processes left and conservation of message counts — a golden-model
// check of CommNode matching plus the network beneath it.
#include <gtest/gtest.h>

#include <map>

#include "machine/params.hpp"
#include "node/machine.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace merm::node {
namespace {

struct Plan {
  // For each (src, dst, tag): how many messages.
  std::map<std::tuple<int, int, int>, int> count;
};

class CommStressTest : public ::testing::TestWithParam<int> {};

TEST_P(CommStressTest, RandomStormFullyDrains) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  constexpr std::uint32_t kNodes = 4;
  sim::Rng rng(seed);

  // Build a random, matched plan.
  Plan plan;
  const int messages = 120;
  for (int m = 0; m < messages; ++m) {
    const int src = static_cast<int>(rng.next_below(kNodes));
    int dst = static_cast<int>(rng.next_below(kNodes));
    if (dst == src) dst = (dst + 1) % kNodes;
    const int tag = static_cast<int>(rng.next_below(5));
    plan.count[{src, dst, tag}] += 1;
  }

  machine::MachineParams params = machine::presets::generic_risc(2, 2);
  sim::Simulator sim;
  Machine machine(sim, params);

  // Each node: one sender process (its share of the plan, shuffled) and one
  // receiver process (all receives directed at it, shuffled).
  std::vector<sim::ProcessHandle> handles;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    std::vector<std::pair<int, int>> sends;   // (dst, tag)
    std::vector<std::pair<int, int>> recvs;   // (src, tag)
    for (const auto& [key, cnt] : plan.count) {
      const auto [src, dst, tag] = key;
      for (int i = 0; i < cnt; ++i) {
        if (src == static_cast<int>(n)) sends.emplace_back(dst, tag);
        if (dst == static_cast<int>(n)) recvs.emplace_back(src, tag);
      }
    }
    auto shuffle = [&rng](auto& v) {
      for (std::size_t i = v.size(); i > 1; --i) {
        std::swap(v[i - 1], v[rng.next_below(i)]);
      }
    };
    shuffle(sends);
    shuffle(recvs);

    handles.push_back(sim.spawn(
        [](sim::Simulator& s, Machine& m, std::uint32_t self,
           std::vector<std::pair<int, int>> list,
           std::uint64_t sd) -> sim::Process {
          sim::Rng local(sd);
          for (const auto& [dst, tag] : list) {
            co_await s.delay(local.next_below(50) *
                             sim::kTicksPerMicrosecond);
            co_await m.comm_node(self).op_asend(
                dst, 64 + local.next_below(4096), tag);
          }
        }(sim, machine, n, sends, rng.next()),
        "sender" + std::to_string(n)));
    handles.push_back(sim.spawn(
        [](sim::Simulator& s, Machine& m, std::uint32_t self,
           std::vector<std::pair<int, int>> list,
           std::uint64_t sd) -> sim::Process {
          sim::Rng local(sd);
          for (const auto& [src, tag] : list) {
            co_await s.delay(local.next_below(20) *
                             sim::kTicksPerMicrosecond);
            co_await m.comm_node(self).op_recv(src, tag);
          }
        }(sim, machine, n, recvs, rng.next()),
        "receiver" + std::to_string(n)));
  }

  sim.run();
  EXPECT_TRUE(Machine::all_finished(handles)) << "storm did not drain";
  EXPECT_EQ(sim.live_processes(), 0u);
  // Conservation: every planned message travelled the network exactly once.
  EXPECT_EQ(machine.network().messages.value(),
            static_cast<std::uint64_t>(messages));
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    EXPECT_EQ(machine.comm_node(n).unclaimed_messages(), 0u) << "node " << n;
    EXPECT_EQ(machine.comm_node(n).pending_receives(), 0u) << "node " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommStressTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace merm::node
