// Machine assembly and hybrid-model tests: detailed runs, the task recorder
// (Fig. 2's computational-task derivation), shared-memory configuration, and
// footprint accounting.
#include "node/machine.hpp"

#include <gtest/gtest.h>

#include "machine/params.hpp"
#include "sim/simulator.hpp"
#include "trace/stream.hpp"

namespace merm::node {
namespace {

using trace::DataType;
using trace::OpCode;
using trace::Operation;

constexpr sim::Tick kUs = sim::kTicksPerMicrosecond;

std::vector<Operation> small_compute_block(int loads) {
  std::vector<Operation> ops;
  for (int i = 0; i < loads; ++i) {
    ops.push_back(Operation::ifetch(0x1000 + 4 * static_cast<std::uint64_t>(i)));
    ops.push_back(
        Operation::load(DataType::kDouble, 0x100000 + 8 * static_cast<std::uint64_t>(i)));
    ops.push_back(Operation::add(DataType::kDouble));
  }
  return ops;
}

TEST(MachineTest, DetailedRunExecutesComputationalOps) {
  sim::Simulator sim;
  Machine m(sim, machine::presets::powerpc601_node());
  trace::Workload w;
  w.sources.push_back(
      std::make_unique<trace::VectorSource>(small_compute_block(100)));
  const auto handles = m.launch_detailed(w);
  sim.run();
  EXPECT_TRUE(Machine::all_finished(handles));
  EXPECT_EQ(m.compute_node(0).cpu(0).ops_executed.value(), 300u);
  EXPECT_GT(sim.now(), 0u);
  EXPECT_EQ(m.total_ops_executed(), 300u);
}

TEST(MachineTest, DetailedRunRejectsWrongSourceCount) {
  sim::Simulator sim;
  Machine m(sim, machine::presets::t805_multicomputer(2, 2));
  trace::Workload w;  // empty: wrong
  EXPECT_THROW(m.launch_detailed(w), std::invalid_argument);
}

TEST(MachineTest, TaskLevelRunRejectsWrongSourceCount) {
  sim::Simulator sim;
  Machine m(sim, machine::presets::t805_multicomputer(2, 2));
  trace::Workload w;
  w.sources.push_back(std::make_unique<trace::VectorSource>());
  EXPECT_THROW(m.launch_task_level(w), std::invalid_argument);
}

TEST(MachineTest, DetailedCommunicationFlowsThroughNetwork) {
  sim::Simulator sim;
  Machine m(sim, machine::presets::t805_multicomputer(2, 1));
  trace::Workload w;
  std::vector<Operation> n0 = small_compute_block(10);
  n0.push_back(Operation::asend(256, 1, 0));
  std::vector<Operation> n1 = small_compute_block(10);
  n1.push_back(Operation::recv(0, 0));
  w.sources.push_back(std::make_unique<trace::VectorSource>(n0));
  w.sources.push_back(std::make_unique<trace::VectorSource>(n1));
  const auto handles = m.launch_detailed(w);
  sim.run();
  EXPECT_TRUE(Machine::all_finished(handles));
  EXPECT_EQ(m.total_messages(), 1u);
  EXPECT_EQ(m.comm_node(0).asends.value(), 1u);
  EXPECT_EQ(m.comm_node(1).recvs.value(), 1u);
}

TEST(MachineTest, TaskRecorderDerivesTaskLevelTrace) {
  sim::Simulator sim;
  Machine m(sim, machine::presets::t805_multicomputer(2, 1));
  trace::Workload w;
  std::vector<Operation> n0 = small_compute_block(20);
  n0.push_back(Operation::asend(256, 1, 0));
  auto more = small_compute_block(5);
  n0.insert(n0.end(), more.begin(), more.end());
  std::vector<Operation> n1{Operation::recv(0, 0)};
  w.sources.push_back(std::make_unique<trace::VectorSource>(n0));
  w.sources.push_back(std::make_unique<trace::VectorSource>(n1));

  std::vector<TaskRecorder> recorders;
  m.launch_detailed(w, &recorders);
  sim.run();

  ASSERT_EQ(recorders.size(), 2u);
  const auto& tasks0 = recorders[0].task_trace();
  // compute, asend, compute.
  ASSERT_EQ(tasks0.size(), 3u);
  EXPECT_EQ(tasks0[0].code, OpCode::kCompute);
  EXPECT_EQ(tasks0[1].code, OpCode::kASend);
  EXPECT_EQ(tasks0[2].code, OpCode::kCompute);
  EXPECT_GT(tasks0[0].value, 0u);
  // The derived compute durations reflect measured simulated time: 20 loads
  // take about 4x as long as 5 loads.
  const double ratio = static_cast<double>(tasks0[0].value) /
                       static_cast<double>(tasks0[2].value);
  EXPECT_NEAR(ratio, 4.0, 1.5);

  // Node 1: only the recv (blocking time is not a task).
  const auto& tasks1 = recorders[1].task_trace();
  ASSERT_EQ(tasks1.size(), 1u);
  EXPECT_EQ(tasks1[0].code, OpCode::kRecv);
}

TEST(MachineTest, DerivedTaskTraceReplaysOnCommModel) {
  // The hybrid-model contract (Fig. 2): a task-level trace derived from a
  // detailed run must replay with the same communication structure.
  sim::Simulator sim;
  Machine m(sim, machine::presets::t805_multicomputer(2, 1));
  trace::Workload w;
  std::vector<Operation> n0 = small_compute_block(20);
  n0.push_back(Operation::asend(256, 1, 0));
  std::vector<Operation> n1 = small_compute_block(40);
  n1.push_back(Operation::recv(0, 0));
  w.sources.push_back(std::make_unique<trace::VectorSource>(n0));
  w.sources.push_back(std::make_unique<trace::VectorSource>(n1));
  std::vector<TaskRecorder> recorders;
  m.launch_detailed(w, &recorders);
  sim.run();
  const sim::Tick detailed_time = sim.now();

  sim::Simulator sim2;
  Machine m2(sim2, machine::presets::t805_multicomputer(2, 1));
  trace::Workload tasks;
  for (const auto& rec : recorders) {
    tasks.sources.push_back(
        std::make_unique<trace::VectorSource>(rec.task_trace()));
  }
  const auto handles = m2.launch_task_level(tasks);
  sim2.run();
  EXPECT_TRUE(Machine::all_finished(handles));
  EXPECT_EQ(m2.total_messages(), 1u);
  // Task-level replay reproduces the detailed timing closely (same machine).
  const double err =
      std::abs(static_cast<double>(sim2.now()) -
               static_cast<double>(detailed_time)) /
      static_cast<double>(detailed_time);
  EXPECT_LT(err, 0.05);
}

TEST(MachineTest, SharedMemoryConfigurationMultipleCpusOneNode) {
  // Section 4.3: shared-memory multiprocessor = single node, several CPUs on
  // a common hierarchy, computational model only.
  machine::MachineParams params = machine::presets::powerpc601_node();
  params.node.cpu_count = 4;
  sim::Simulator sim;
  Machine m(sim, params);
  EXPECT_EQ(m.node_count(), 1u);
  EXPECT_EQ(m.cpus_per_node(), 4u);
  EXPECT_TRUE(m.compute_node(0).memory().coherent());

  trace::Workload w;
  for (int c = 0; c < 4; ++c) {
    w.sources.push_back(
        std::make_unique<trace::VectorSource>(small_compute_block(50)));
  }
  const auto handles = m.launch_detailed(w);
  sim.run();
  EXPECT_TRUE(Machine::all_finished(handles));
  // All four CPUs ran; shared addresses mean snoop traffic occurred.
  for (std::uint32_t c = 0; c < 4; ++c) {
    EXPECT_EQ(m.compute_node(0).cpu(c).ops_executed.value(), 150u);
  }
}

TEST(MachineTest, HybridClustersCpusShareNodeCommNode) {
  // Section 4.3: clusters of SMP nodes in a message-passing network.
  machine::MachineParams params = machine::presets::generic_risc(2, 1);
  params.node.cpu_count = 2;
  sim::Simulator sim;
  Machine m(sim, params);
  trace::Workload w;
  // node0.cpu0 sends, node1.cpu1 receives; other CPUs compute.
  std::vector<Operation> send_trace = small_compute_block(5);
  send_trace.push_back(Operation::asend(128, 1, 0));
  std::vector<Operation> recv_trace = small_compute_block(5);
  recv_trace.push_back(Operation::recv(0, 0));
  w.sources.push_back(std::make_unique<trace::VectorSource>(send_trace));
  w.sources.push_back(
      std::make_unique<trace::VectorSource>(small_compute_block(5)));
  w.sources.push_back(
      std::make_unique<trace::VectorSource>(small_compute_block(5)));
  w.sources.push_back(std::make_unique<trace::VectorSource>(recv_trace));
  const auto handles = m.launch_detailed(w);
  sim.run();
  EXPECT_TRUE(Machine::all_finished(handles));
  EXPECT_EQ(m.total_messages(), 1u);
}

TEST(MachineTest, FootprintGrowsWithNodesAndCaches) {
  sim::Simulator sim_small;
  Machine small(sim_small, machine::presets::t805_multicomputer(2, 1));
  sim::Simulator sim_big;
  Machine big(sim_big, machine::presets::t805_multicomputer(4, 4));
  EXPECT_GT(big.footprint_bytes(), small.footprint_bytes());

  sim::Simulator sim_cached;
  Machine cached(sim_cached, machine::presets::generic_risc(2, 1));
  sim::Simulator sim_cacheless;
  machine::MachineParams p = machine::presets::generic_risc(2, 1);
  p.node.memory.levels.clear();
  Machine cacheless(sim_cacheless, p);
  EXPECT_GT(cached.footprint_bytes(), cacheless.footprint_bytes());
}

TEST(MachineTest, StatsRegistryCoversNodesAndNetwork) {
  sim::Simulator sim;
  Machine m(sim, machine::presets::generic_risc(2, 2));
  stats::StatRegistry reg;
  m.register_stats(reg, "m");
  const auto counters = reg.counter_values();
  EXPECT_GT(counters.size(), 10u);
  bool has_net = false;
  bool has_node = false;
  for (const auto& [name, value] : counters) {
    if (name.rfind("m.net.", 0) == 0) has_net = true;
    if (name.rfind("m.node0.", 0) == 0) has_node = true;
  }
  EXPECT_TRUE(has_net);
  EXPECT_TRUE(has_node);
}

}  // namespace
}  // namespace merm::node
