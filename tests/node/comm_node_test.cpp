// Communication-model tests: blocking semantics, tag/source matching,
// asynchronous operations, and the task-level run loop.
#include "node/comm_node.hpp"

#include <gtest/gtest.h>

#include "machine/params.hpp"
#include "node/machine.hpp"
#include "sim/simulator.hpp"
#include "trace/stream.hpp"

namespace merm::node {
namespace {

using trace::Operation;

constexpr sim::Tick kUs = sim::kTicksPerMicrosecond;

// A 4-node ring machine with easy numbers: NIC setup 1 us, copy 1 GB/s,
// fast wormhole network.
machine::MachineParams test_machine(std::uint32_t nodes = 4) {
  machine::MachineParams m = machine::presets::generic_risc(nodes, 1);
  m.topology.kind = machine::TopologyKind::kRing;
  m.topology.dims = {nodes, 1};
  m.nic.send_setup = kUs;
  m.nic.recv_setup = kUs;
  m.nic.copy_bytes_per_s = 1e9;
  return m;
}

struct Rig {
  sim::Simulator sim;
  Machine machine;

  explicit Rig(std::uint32_t nodes = 4) : machine(sim, test_machine(nodes)) {}
};

TEST(CommNodeTest, AsendThenRecvDeliversMessage) {
  Rig rig;
  sim::Tick recv_done = 0;
  rig.sim.spawn([](Rig& r) -> sim::Process {
    co_await r.machine.comm_node(0).op_asend(1, 1024, 7);
  }(rig));
  rig.sim.spawn([](Rig& r, sim::Tick* out) -> sim::Process {
    co_await r.machine.comm_node(1).op_recv(0, 7);
    *out = r.sim.now();
  }(rig, &recv_done));
  rig.sim.run();
  EXPECT_GT(recv_done, 0u);
  EXPECT_EQ(rig.machine.comm_node(1).unclaimed_messages(), 0u);
  EXPECT_EQ(rig.machine.network().messages.value(), 1u);
  EXPECT_EQ(rig.sim.live_processes(), 0u);
}

TEST(CommNodeTest, AsendCompletesBeforeDelivery) {
  Rig rig;
  sim::Tick send_done = 0;
  rig.sim.spawn([](Rig& r, sim::Tick* out) -> sim::Process {
    co_await r.machine.comm_node(0).op_asend(1, 1 << 20, 0);  // 1 MiB
    *out = r.sim.now();
  }(rig, &send_done));
  rig.sim.run();
  // Sender paid only setup (1 us) + copy (1 MiB at 1 GB/s ~ 1.05 ms), not
  // the network transfer; and the message sits unclaimed at node 1.
  EXPECT_EQ(rig.machine.comm_node(1).unclaimed_messages(), 1u);
  EXPECT_LT(send_done, rig.sim.now());  // network kept running after asend
}

TEST(CommNodeTest, SyncSendBlocksUntilConsumed) {
  Rig rig;
  sim::Tick send_done = 0;
  sim::Tick recv_posted_at = 50 * kUs;
  rig.sim.spawn([](Rig& r, sim::Tick* out) -> sim::Process {
    co_await r.machine.comm_node(0).op_send(1, 64, 3);
    *out = r.sim.now();
  }(rig, &send_done));
  rig.sim.spawn([](Rig& r, sim::Tick at) -> sim::Process {
    co_await r.sim.delay(at);
    co_await r.machine.comm_node(1).op_recv(0, 3);
  }(rig, recv_posted_at));
  rig.sim.run();
  // The sender cannot complete before the receiver even posted.
  EXPECT_GT(send_done, recv_posted_at);
  EXPECT_GT(rig.machine.comm_node(0).send_block_ticks.max(), 0.0);
}

TEST(CommNodeTest, RecvBlocksUntilArrival) {
  Rig rig;
  sim::Tick recv_done = 0;
  rig.sim.spawn([](Rig& r, sim::Tick* out) -> sim::Process {
    co_await r.machine.comm_node(2).op_recv(1, 0);
    *out = r.sim.now();
  }(rig, &recv_done));
  rig.sim.spawn([](Rig& r) -> sim::Process {
    co_await r.sim.delay(100 * kUs);
    co_await r.machine.comm_node(1).op_asend(2, 256, 0);
  }(rig));
  rig.sim.run();
  EXPECT_GT(recv_done, 100 * kUs);
  EXPECT_GT(rig.machine.comm_node(2).recv_block_ticks.max(), 0.0);
}

TEST(CommNodeTest, TagsMatchExactly) {
  Rig rig;
  std::vector<int> order;
  rig.sim.spawn([](Rig& r, std::vector<int>* order) -> sim::Process {
    // Send tag 5 first, then tag 9.
    co_await r.machine.comm_node(0).op_asend(1, 64, 5);
    co_await r.machine.comm_node(0).op_asend(1, 64, 9);
    (void)order;
  }(rig, &order));
  rig.sim.spawn([](Rig& r, std::vector<int>* order) -> sim::Process {
    // Receive tag 9 first: must match the *second* message.
    co_await r.machine.comm_node(1).op_recv(0, 9);
    order->push_back(9);
    co_await r.machine.comm_node(1).op_recv(0, 5);
    order->push_back(5);
  }(rig, &order));
  rig.sim.run();
  EXPECT_EQ(order, (std::vector<int>{9, 5}));
  EXPECT_EQ(rig.sim.live_processes(), 0u);
}

TEST(CommNodeTest, AnySourceReceiveMatchesFirstArrival) {
  Rig rig;
  rig.sim.spawn([](Rig& r) -> sim::Process {
    co_await r.sim.delay(10 * kUs);
    co_await r.machine.comm_node(3).op_asend(0, 64, 1);
  }(rig));
  bool received = false;
  rig.sim.spawn([](Rig& r, bool* got) -> sim::Process {
    co_await r.machine.comm_node(0).op_recv(trace::kNoNode, 1);
    *got = true;
  }(rig, &received));
  rig.sim.run();
  EXPECT_TRUE(received);
}

TEST(CommNodeTest, SelfSendWorks) {
  Rig rig;
  bool done = false;
  rig.sim.spawn([](Rig& r, bool* out) -> sim::Process {
    co_await r.machine.comm_node(2).op_asend(2, 128, 4);
    co_await r.machine.comm_node(2).op_recv(2, 4);
    *out = true;
  }(rig, &done));
  rig.sim.run();
  EXPECT_TRUE(done);
}

TEST(CommNodeTest, ArecvConsumesOnArrivalWithoutBlocking) {
  Rig rig;
  sim::Tick arecv_done = 0;
  rig.sim.spawn([](Rig& r, sim::Tick* out) -> sim::Process {
    co_await r.machine.comm_node(1).op_arecv(0, 2);
    *out = r.sim.now();  // must complete immediately (no message yet)
  }(rig, &arecv_done));
  rig.sim.run();
  EXPECT_EQ(rig.machine.comm_node(1).pending_receives(), 0u);
  // The arecv completed after just the NIC setup.
  EXPECT_EQ(arecv_done, kUs);
  // Now the message arrives and is consumed by the passive post.
  rig.sim.spawn([](Rig& r) -> sim::Process {
    co_await r.machine.comm_node(0).op_asend(1, 64, 2);
  }(rig));
  rig.sim.run();
  EXPECT_EQ(rig.machine.comm_node(1).unclaimed_messages(), 0u);
}

TEST(CommNodeTest, ArecvWithMessageAlreadyThereConsumesIt) {
  Rig rig;
  rig.sim.spawn([](Rig& r) -> sim::Process {
    co_await r.machine.comm_node(0).op_asend(1, 64, 8);
  }(rig));
  rig.sim.run();
  ASSERT_EQ(rig.machine.comm_node(1).unclaimed_messages(), 1u);
  rig.sim.spawn([](Rig& r) -> sim::Process {
    co_await r.machine.comm_node(1).op_arecv(0, 8);
  }(rig));
  rig.sim.run();
  EXPECT_EQ(rig.machine.comm_node(1).unclaimed_messages(), 0u);
}

TEST(CommNodeTest, SyncSendToPassiveArecvCompletes) {
  Rig rig;
  bool send_done = false;
  rig.sim.spawn([](Rig& r) -> sim::Process {
    co_await r.machine.comm_node(1).op_arecv(0, 6);
  }(rig));
  rig.sim.run();
  rig.sim.spawn([](Rig& r, bool* out) -> sim::Process {
    co_await r.machine.comm_node(0).op_send(1, 64, 6);
    *out = true;  // ack must come back through the passive consume
  }(rig, &send_done));
  rig.sim.run();
  EXPECT_TRUE(send_done);
}

TEST(CommNodeTest, ComputeAdvancesTime) {
  Rig rig;
  rig.sim.spawn([](Rig& r) -> sim::Process {
    co_await r.machine.comm_node(0).op_compute(123 * kUs);
  }(rig));
  rig.sim.run();
  EXPECT_EQ(rig.sim.now(), 123 * kUs);
  EXPECT_EQ(rig.machine.comm_node(0).compute_ticks(), 123 * kUs);
}

TEST(CommNodeTest, IssueDispatchesAndRejectsComputationalOps) {
  Rig rig;
  rig.sim.spawn([](Rig& r) -> sim::Process {
    co_await r.machine.comm_node(0).issue(Operation::compute(kUs));
  }(rig));
  rig.sim.run();
  EXPECT_EQ(rig.machine.comm_node(0).compute_ops.value(), 1u);

  rig.sim.spawn([](Rig& r) -> sim::Process {
    co_await r.machine.comm_node(0).issue(
        Operation::load(trace::DataType::kInt32, 0x100));
  }(rig));
  EXPECT_THROW(rig.sim.run(), std::logic_error);
}

TEST(CommNodeTest, TaskLevelRunExecutesWholeTrace) {
  Rig rig(2);
  trace::Workload w;
  w.sources.push_back(
      std::make_unique<trace::VectorSource>(std::vector<Operation>{
          Operation::compute(10 * kUs),
          Operation::asend(512, 1, 0),
          Operation::compute(5 * kUs),
      }));
  w.sources.push_back(
      std::make_unique<trace::VectorSource>(std::vector<Operation>{
          Operation::recv(0, 0),
          Operation::compute(20 * kUs),
      }));
  const auto handles = rig.machine.launch_task_level(w);
  rig.sim.run();
  EXPECT_TRUE(Machine::all_finished(handles));
  EXPECT_EQ(rig.machine.comm_node(0).asends.value(), 1u);
  EXPECT_EQ(rig.machine.comm_node(1).recvs.value(), 1u);
  EXPECT_GT(rig.sim.now(), 30 * kUs);
}

TEST(CommNodeTest, MismatchedWorkloadLeavesProcessesBlocked) {
  Rig rig(2);
  trace::Workload w;
  // Node 0 expects a message nobody sends: a deadlocked workload.
  w.sources.push_back(std::make_unique<trace::VectorSource>(
      std::vector<Operation>{Operation::recv(1, 0)}));
  w.sources.push_back(std::make_unique<trace::VectorSource>(
      std::vector<Operation>{Operation::compute(kUs)}));
  const auto handles = rig.machine.launch_task_level(w);
  rig.sim.run();
  EXPECT_FALSE(Machine::all_finished(handles));
  EXPECT_EQ(rig.sim.live_processes(), 1u);
}

}  // namespace
}  // namespace merm::node
