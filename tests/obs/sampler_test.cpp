// obs::CounterSampler (moved here from stats/): CSV shapes and the
// zero-elapsed-interval guard in the rates writer.
#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hpp"

namespace merm::obs {
namespace {

TEST(CounterSamplerTest, SamplesAndWritesCsv) {
  stats::StatRegistry reg;
  stats::Counter a;
  stats::Counter b;
  reg.register_counter("net.msgs", &a);
  reg.register_counter("cpu.ops", &b);
  CounterSampler sampler(reg, {"net.msgs", "cpu.ops", "missing"});
  a.add(5);
  b.add(100);
  sampler.sample(1000);
  a.add(5);
  b.add(50);
  sampler.sample(2000);
  EXPECT_EQ(sampler.samples(), 2u);

  std::ostringstream csv;
  sampler.write_csv(csv);
  EXPECT_EQ(csv.str(),
            "time_ps,net.msgs,cpu.ops,missing\n"
            "1000,5,100,0\n"
            "2000,10,150,0\n");

  std::ostringstream deltas;
  sampler.write_csv_deltas(deltas);
  EXPECT_EQ(deltas.str(),
            "time_ps,net.msgs,cpu.ops,missing\n"
            "2000,5,50,0\n");
}

TEST(CounterSamplerTest, RatesAreInCountsPerSimulatedSecond) {
  stats::StatRegistry reg;
  stats::Counter c;
  reg.register_counter("msgs", &c);
  CounterSampler sampler(reg, {"msgs"});
  sampler.sample(0);
  c.add(5);
  sampler.sample(sim::kTicksPerSecond);  // 1 simulated second later

  std::ostringstream rates;
  sampler.write_csv_rates(rates);
  EXPECT_EQ(rates.str(),
            "time_ps,msgs_per_s\n" +
                std::to_string(sim::kTicksPerSecond) + ",5\n");
}

TEST(CounterSamplerTest, RatesSkipZeroElapsedIntervals) {
  // A manual end-of-run sample can land on the same tick as the last
  // periodic one; the rate writer must skip the interval, not divide by
  // zero (the old stats:: version emitted inf/nan rows).
  stats::StatRegistry reg;
  stats::Counter c;
  reg.register_counter("msgs", &c);
  CounterSampler sampler(reg, {"msgs"});
  sampler.sample(1000);
  c.add(3);
  sampler.sample(1000);  // duplicate tick: no interval
  c.add(7);
  sampler.sample(1000 + sim::kTicksPerSecond);

  std::ostringstream rates;
  sampler.write_csv_rates(rates);
  const std::string out = rates.str();
  std::size_t lines = 0;
  for (const char ch : out) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2u) << out;  // header + the one well-defined interval
  EXPECT_EQ(out.find("inf"), std::string::npos);
  EXPECT_EQ(out.find("nan"), std::string::npos);
  EXPECT_NE(out.find(",7\n"), std::string::npos);
}

TEST(CounterSamplerTest, AllZeroElapsedIntervalsYieldHeaderOnlyRates) {
  // Every interval degenerate: the rates CSV is just the header — no rows,
  // no inf/nan — while the delta writer still reports the counted change
  // (deltas never divide by elapsed time).
  stats::StatRegistry reg;
  stats::Counter c;
  reg.register_counter("msgs", &c);
  CounterSampler sampler(reg, {"msgs"});
  sampler.sample(500);
  c.add(2);
  sampler.sample(500);
  c.add(4);
  sampler.sample(500);

  std::ostringstream rates;
  sampler.write_csv_rates(rates);
  EXPECT_EQ(rates.str(), "time_ps,msgs_per_s\n");

  std::ostringstream deltas;
  sampler.write_csv_deltas(deltas);
  EXPECT_EQ(deltas.str(),
            "time_ps,msgs\n"
            "500,2\n"
            "500,4\n");
}

}  // namespace
}  // namespace merm::obs
