// Exporter tests: MOBT binary round-trip and a golden-file check of the
// Chrome trace-event JSON for a tiny deterministic 2-node run.
//
// Regenerate the golden file after an intentional format change with
//   MERM_UPDATE_GOLDEN=1 ./tests/obs_exporter_test
// and review the diff like any other source change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/workbench.hpp"
#include "gen/apps.hpp"
#include "obs/binary_trace.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"

namespace merm::obs {
namespace {

TraceData sample_data() {
  TraceSink sink(4);  // small rings so the round-trip covers wrap + drops
  const TrackId cpu = sink.add_track("node0.cpu0");
  const TrackId comm = sink.add_track("node0.comm");
  sink.span(cpu, SpanKind::kCompute, 0, 500, 0, 0, 0);
  sink.span(cpu, SpanKind::kMissWalk, 500, 620, 0x1000, 0, 0);
  for (sim::Tick i = 0; i < 6; ++i) {
    sink.span(cpu, SpanKind::kCompute, 700 + i * 10, 705 + i * 10);
  }
  sink.instant(comm, SpanKind::kNicRetry, 800, 2, 1, 7);
  sink.instant(comm, SpanKind::kDrop, 820, 64, 1, 0);
  sink.open(comm, SpanKind::kRecvBlock, 900, 0, -1, 5);
  sink.seal(1000, true);
  return sink.to_data();
}

TEST(BinaryTraceTest, RoundTripsExactly) {
  const TraceData data = sample_data();

  std::ostringstream first;
  write_binary_trace(first, data);

  std::istringstream in(first.str());
  const TraceData back = read_binary_trace(in);

  EXPECT_EQ(back.hung, data.hung);
  EXPECT_EQ(back.sealed_at, data.sealed_at);
  ASSERT_EQ(back.tracks.size(), data.tracks.size());
  for (std::size_t t = 0; t < data.tracks.size(); ++t) {
    EXPECT_EQ(back.tracks[t].name, data.tracks[t].name);
    EXPECT_EQ(back.tracks[t].dropped, data.tracks[t].dropped);
  }
  ASSERT_EQ(back.events.size(), data.events.size());
  for (std::size_t i = 0; i < data.events.size(); ++i) {
    EXPECT_EQ(back.events[i].begin, data.events[i].begin) << i;
    EXPECT_EQ(back.events[i].end, data.events[i].end) << i;
    EXPECT_EQ(back.events[i].a, data.events[i].a) << i;
    EXPECT_EQ(back.events[i].b, data.events[i].b) << i;
    EXPECT_EQ(back.events[i].c, data.events[i].c) << i;
    EXPECT_EQ(back.events[i].track, data.events[i].track) << i;
    EXPECT_EQ(back.events[i].kind, data.events[i].kind) << i;
    EXPECT_EQ(back.events[i].flags, data.events[i].flags) << i;
  }

  // Byte-identical re-serialization — what the sweep determinism test hashes.
  std::ostringstream second;
  write_binary_trace(second, back);
  EXPECT_EQ(first.str(), second.str());
}

TEST(BinaryTraceTest, RejectsBadMagicAndTruncation) {
  std::istringstream bad("NOPE....garbage");
  EXPECT_THROW(read_binary_trace(bad), std::runtime_error);

  std::ostringstream full;
  write_binary_trace(full, sample_data());
  const std::string whole = full.str();
  std::istringstream truncated(whole.substr(0, whole.size() / 2));
  EXPECT_THROW(read_binary_trace(truncated), std::runtime_error);
}

// A 2-node ping-pong, detailed level: small enough that the whole JSON is
// reviewable, rich enough to exercise spans on every track family.  The
// export is byte-deterministic (simulated time only, integer formatting),
// so a straight string comparison is safe.
std::string tiny_2node_chrome_json() {
  core::Workbench wb(machine::presets::t805_multicomputer(2, 1));
  wb.enable_tracing();
  auto workload = gen::make_offline_workload(
      2, [](gen::Annotator& a, trace::NodeId self, std::uint32_t nodes) {
        gen::pingpong(a, self, nodes, gen::PingPongParams{2, 64});
      });
  const core::RunResult r = wb.run_detailed(workload);
  EXPECT_TRUE(r.completed);
  EXPECT_NE(r.trace, nullptr);
  std::ostringstream os;
  // No host profiler: host times vary run to run and would break the golden.
  write_chrome_trace(os, *r.trace);
  return os.str();
}

TEST(ChromeTraceTest, GoldenTiny2NodeRun) {
  const std::string got = tiny_2node_chrome_json();
  const std::string path = std::string(MERM_GOLDEN_DIR) + "/tiny_2node.json";

  if (std::getenv("MERM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "golden updated: " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " (regenerate with MERM_UPDATE_GOLDEN=1)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "Chrome export changed; if intentional, regenerate with "
         "MERM_UPDATE_GOLDEN=1 and review the diff";
}

TEST(ChromeTraceTest, ExportIsReproducible) {
  EXPECT_EQ(tiny_2node_chrome_json(), tiny_2node_chrome_json());
}

TEST(ChromeTraceTest, HostTrackIsSecondProcess) {
  HostProfiler prof;
  { const HostProfiler::Scope s(prof, "run"); }
  TraceSink sink;
  sink.add_track("t");
  sink.seal(0, false);
  const TraceData data = sink.to_data();

  std::ostringstream with_host;
  write_chrome_trace(with_host, data, &prof);
  EXPECT_NE(with_host.str().find("\"args\": {\"name\": \"host\"}"),
            std::string::npos)
      << with_host.str();

  std::ostringstream without;
  write_chrome_trace(without, data);
  EXPECT_EQ(without.str().find("host"), std::string::npos);
}

TEST(ChromeTraceTest, OpenSpansCarryHangTag) {
  TraceSink sink;
  const TrackId t = sink.add_track("node0.comm");
  sink.open(t, SpanKind::kRecvBlock, 100, 0, 1, 2);
  sink.seal(900, true);
  std::ostringstream os;
  write_chrome_trace(os, sink.to_data());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"cat\": \"sim,hang\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"hang\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"unterminated\": 1"), std::string::npos);
}

}  // namespace
}  // namespace merm::obs
