// HostProfiler: phase stack discipline and aggregation.  Host durations are
// nondeterministic, so assertions are structural (ordering, nesting, sums),
// never about absolute time.
#include "obs/host_profiler.hpp"

#include <gtest/gtest.h>

namespace merm::obs {
namespace {

TEST(HostProfilerTest, PhasesNestWithDepth) {
  HostProfiler prof;
  {
    const HostProfiler::Scope outer(prof, "run");
    const HostProfiler::Scope inner(prof, "export");
  }
  ASSERT_EQ(prof.phases().size(), 2u);
  // Stored in begin order; depth reflects nesting at begin time.
  EXPECT_EQ(prof.phases()[0].name, "run");
  EXPECT_EQ(prof.phases()[0].depth, 0);
  EXPECT_EQ(prof.phases()[1].name, "export");
  EXPECT_EQ(prof.phases()[1].depth, 1);
  EXPECT_GE(prof.phases()[0].dur_s, prof.phases()[1].dur_s);
}

TEST(HostProfilerTest, TotalSecondsSumsSameNamedPhases) {
  HostProfiler prof;
  for (int i = 0; i < 3; ++i) {
    const HostProfiler::Scope s(prof, "step");
  }
  EXPECT_EQ(prof.phases().size(), 3u);
  EXPECT_GE(prof.total_seconds("step"), 0.0);
  EXPECT_EQ(prof.total_seconds("absent"), 0.0);
  EXPECT_GE(prof.elapsed_seconds(), prof.total_seconds("step"));
}

TEST(HostProfilerTest, NestedPhaseAccounting) {
  // A parent's duration covers its children, siblings share the parent's
  // depth + 1, and total_seconds() sums same-named phases across nesting
  // levels — the invariants the Chrome "host" track rendering relies on.
  HostProfiler prof;
  {
    const HostProfiler::Scope run(prof, "run");
    { const HostProfiler::Scope gen(prof, "step"); }
    {
      const HostProfiler::Scope loop(prof, "loop");
      const HostProfiler::Scope inner(prof, "step");
    }
  }
  ASSERT_EQ(prof.phases().size(), 4u);
  EXPECT_EQ(prof.phases()[0].name, "run");
  EXPECT_EQ(prof.phases()[0].depth, 0);
  EXPECT_EQ(prof.phases()[1].name, "step");
  EXPECT_EQ(prof.phases()[1].depth, 1);
  EXPECT_EQ(prof.phases()[2].name, "loop");
  EXPECT_EQ(prof.phases()[2].depth, 1);  // sibling of the first "step"
  EXPECT_EQ(prof.phases()[3].name, "step");
  EXPECT_EQ(prof.phases()[3].depth, 2);  // nested under "loop"

  const auto& run = prof.phases()[0];
  double children = 0.0;
  for (std::size_t i = 1; i < prof.phases().size(); ++i) {
    const auto& p = prof.phases()[i];
    EXPECT_GE(p.begin_s, run.begin_s);
    EXPECT_LE(p.begin_s + p.dur_s, run.begin_s + run.dur_s + 1e-9);
    if (p.depth == 1) children += p.dur_s;
  }
  EXPECT_GE(run.dur_s + 1e-9, children);
  // Same-named phases sum regardless of depth.
  EXPECT_GE(prof.total_seconds("step"),
            prof.phases()[1].dur_s + prof.phases()[3].dur_s - 1e-12);
}

TEST(HostProfilerTest, UnbalancedEndIsIgnored) {
  HostProfiler prof;
  prof.end();  // nothing open: must not crash or record
  EXPECT_TRUE(prof.phases().empty());
  { const HostProfiler::Scope s(prof, "a"); }
  prof.end();  // still balanced afterwards
  ASSERT_EQ(prof.phases().size(), 1u);
  EXPECT_GE(prof.phases()[0].dur_s, 0.0);
}

TEST(HostProfilerTest, ResetDropsPhasesAndRestartsOrigin) {
  HostProfiler prof;
  { const HostProfiler::Scope s(prof, "a"); }
  prof.reset();
  EXPECT_TRUE(prof.phases().empty());
  { const HostProfiler::Scope s(prof, "b"); }
  ASSERT_EQ(prof.phases().size(), 1u);
  EXPECT_EQ(prof.phases()[0].name, "b");
  EXPECT_EQ(prof.phases()[0].depth, 0);
}

}  // namespace
}  // namespace merm::obs
