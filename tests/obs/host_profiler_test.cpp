// HostProfiler: phase stack discipline and aggregation.  Host durations are
// nondeterministic, so assertions are structural (ordering, nesting, sums),
// never about absolute time.
#include "obs/host_profiler.hpp"

#include <gtest/gtest.h>

namespace merm::obs {
namespace {

TEST(HostProfilerTest, PhasesNestWithDepth) {
  HostProfiler prof;
  {
    const HostProfiler::Scope outer(prof, "run");
    const HostProfiler::Scope inner(prof, "export");
  }
  ASSERT_EQ(prof.phases().size(), 2u);
  // Stored in begin order; depth reflects nesting at begin time.
  EXPECT_EQ(prof.phases()[0].name, "run");
  EXPECT_EQ(prof.phases()[0].depth, 0);
  EXPECT_EQ(prof.phases()[1].name, "export");
  EXPECT_EQ(prof.phases()[1].depth, 1);
  EXPECT_GE(prof.phases()[0].dur_s, prof.phases()[1].dur_s);
}

TEST(HostProfilerTest, TotalSecondsSumsSameNamedPhases) {
  HostProfiler prof;
  for (int i = 0; i < 3; ++i) {
    const HostProfiler::Scope s(prof, "step");
  }
  EXPECT_EQ(prof.phases().size(), 3u);
  EXPECT_GE(prof.total_seconds("step"), 0.0);
  EXPECT_EQ(prof.total_seconds("absent"), 0.0);
  EXPECT_GE(prof.elapsed_seconds(), prof.total_seconds("step"));
}

TEST(HostProfilerTest, ResetDropsPhasesAndRestartsOrigin) {
  HostProfiler prof;
  { const HostProfiler::Scope s(prof, "a"); }
  prof.reset();
  EXPECT_TRUE(prof.phases().empty());
  { const HostProfiler::Scope s(prof, "b"); }
  ASSERT_EQ(prof.phases().size(), 1u);
  EXPECT_EQ(prof.phases()[0].name, "b");
  EXPECT_EQ(prof.phases()[0].depth, 0);
}

}  // namespace
}  // namespace merm::obs
