// TraceSink unit tests: ring bounds, open-span lifecycle, seal semantics.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

namespace merm::obs {
namespace {

TEST(TraceSinkTest, TracksAssignedInCallOrder) {
  TraceSink sink;
  EXPECT_EQ(sink.add_track("a"), 0);
  EXPECT_EQ(sink.add_track("b"), 1);
  EXPECT_EQ(sink.track_count(), 2u);
  EXPECT_EQ(sink.track_name(1), "b");
}

TEST(TraceSinkTest, SpansAndInstantsExport) {
  TraceSink sink;
  const TrackId t = sink.add_track("node0.cpu0");
  sink.span(t, SpanKind::kCompute, 100, 200);
  sink.instant(t, SpanKind::kNicRetry, 150, 2, 1, 7);
  sink.seal(300, false);

  const TraceData data = sink.to_data();
  ASSERT_EQ(data.events.size(), 2u);
  EXPECT_EQ(data.events[0].kind, SpanKind::kCompute);
  EXPECT_EQ(data.events[0].begin, 100u);
  EXPECT_EQ(data.events[0].end, 200u);
  EXPECT_EQ(data.events[0].flags, 0);
  EXPECT_EQ(data.events[1].kind, SpanKind::kNicRetry);
  EXPECT_EQ(data.events[1].flags, kFlagInstant);
  EXPECT_EQ(data.events[1].begin, data.events[1].end);
  EXPECT_EQ(data.events[1].a, 2);
  EXPECT_EQ(data.events[1].b, 1);
  EXPECT_EQ(data.events[1].c, 7);
  EXPECT_FALSE(data.hung);
  EXPECT_EQ(data.sealed_at, 300u);
}

TEST(TraceSinkTest, RingWrapsDroppingOldest) {
  TraceSink sink(4);
  const TrackId t = sink.add_track("t");
  for (sim::Tick i = 0; i < 6; ++i) {
    sink.span(t, SpanKind::kCompute, i * 10, i * 10 + 5);
  }
  EXPECT_EQ(sink.events_recorded(), 6u);
  EXPECT_EQ(sink.events_dropped(), 2u);

  sink.seal(100, false);
  const TraceData data = sink.to_data();
  ASSERT_EQ(data.events.size(), 4u);  // the 4 most recent, oldest first
  EXPECT_EQ(data.events[0].begin, 20u);
  EXPECT_EQ(data.events[3].begin, 50u);
  ASSERT_EQ(data.tracks.size(), 1u);
  EXPECT_EQ(data.tracks[0].dropped, 2u);
}

TEST(TraceSinkTest, RingsAreIndependentPerTrack) {
  TraceSink sink(2);
  const TrackId a = sink.add_track("a");
  const TrackId b = sink.add_track("b");
  sink.span(a, SpanKind::kCompute, 1, 2);
  sink.span(a, SpanKind::kCompute, 3, 4);
  sink.span(a, SpanKind::kCompute, 5, 6);  // wraps track a only
  sink.span(b, SpanKind::kBusWait, 7, 8);
  sink.seal(10, false);

  const TraceData data = sink.to_data();
  EXPECT_EQ(data.tracks[a].dropped, 1u);
  EXPECT_EQ(data.tracks[b].dropped, 0u);
  ASSERT_EQ(data.events.size(), 3u);
  // Track-by-track order: a's two survivors, then b's event.
  EXPECT_EQ(data.events[0].begin, 3u);
  EXPECT_EQ(data.events[1].begin, 5u);
  EXPECT_EQ(data.events[2].track, b);
}

TEST(TraceSinkTest, OpenCloseMovesSpanIntoRing) {
  TraceSink sink;
  const TrackId t = sink.add_track("t");
  const SpanToken tok = sink.open(t, SpanKind::kSendBlock, 100, 4096, 3, 9);
  EXPECT_EQ(sink.open_spans(), 1u);
  sink.close(tok, 250);
  EXPECT_EQ(sink.open_spans(), 0u);

  sink.seal(300, false);
  const TraceData data = sink.to_data();
  ASSERT_EQ(data.events.size(), 1u);
  EXPECT_EQ(data.events[0].begin, 100u);
  EXPECT_EQ(data.events[0].end, 250u);
  EXPECT_EQ(data.events[0].flags, 0);
  EXPECT_EQ(data.events[0].a, 4096);
}

TEST(TraceSinkTest, AnnotateUpdatesOpenPayload) {
  TraceSink sink;
  const TrackId t = sink.add_track("t");
  const SpanToken tok = sink.open(t, SpanKind::kSendBlock, 10, 64, 1, 0);
  sink.annotate(tok, 64, 1, 3);  // e.g. attempt count climbed to 3
  sink.close(tok, 20);
  sink.seal(30, false);
  EXPECT_EQ(sink.to_data().events[0].c, 3);
}

TEST(TraceSinkTest, OpenSpanSurvivesRingWrap) {
  TraceSink sink(2);
  const TrackId t = sink.add_track("t");
  const SpanToken tok = sink.open(t, SpanKind::kRecvBlock, 5);
  for (sim::Tick i = 0; i < 8; ++i) {
    sink.span(t, SpanKind::kCompute, i, i + 1);  // wrap several times
  }
  sink.close(tok, 90);
  sink.seal(100, false);
  const TraceData data = sink.to_data();
  bool found = false;
  for (const TraceEvent& ev : data.events) {
    found |= ev.kind == SpanKind::kRecvBlock && ev.begin == 5 && ev.end == 90;
  }
  EXPECT_TRUE(found) << "blocked-recv span lost to ring wrap";
}

TEST(TraceSinkTest, SealExportsOpenSpansAsUnterminated) {
  // The hang-diagnostic fold: a recv still blocked when the queue drains
  // exports as an open span ending at seal time, tagged by data.hung.
  TraceSink sink;
  const TrackId t = sink.add_track("node1.comm");
  sink.open(t, SpanKind::kRecvBlock, 400, 0, 0, 5);
  sink.seal(1000, true);

  const TraceData data = sink.to_data();
  EXPECT_TRUE(data.hung);
  ASSERT_EQ(data.events.size(), 1u);
  EXPECT_EQ(data.events[0].flags & kFlagOpen, kFlagOpen);
  EXPECT_EQ(data.events[0].begin, 400u);
  EXPECT_EQ(data.events[0].end, 1000u);  // clamped to sealed_at
  EXPECT_EQ(data.events[0].c, 5);
}

TEST(TraceSinkTest, TokensRecycleAfterClose) {
  TraceSink sink;
  const TrackId t = sink.add_track("t");
  const SpanToken first = sink.open(t, SpanKind::kSendBlock, 1);
  sink.close(first, 2);
  const SpanToken second = sink.open(t, SpanKind::kSendBlock, 3);
  EXPECT_EQ(first, second);  // slot reuse keeps the table bounded
  sink.close(second, 4);
  sink.seal(5, false);
  EXPECT_EQ(sink.to_data().events.size(), 2u);
}

TEST(TraceSinkTest, KindNamesAreStable) {
  // The exporter and golden files depend on these strings.
  EXPECT_STREQ(to_string(SpanKind::kCompute), "compute");
  EXPECT_STREQ(to_string(SpanKind::kNicRetry), "nic-retry");
  EXPECT_STREQ(to_string(SpanKind::kReroute), "reroute");
}

}  // namespace
}  // namespace merm::obs
