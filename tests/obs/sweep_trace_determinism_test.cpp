// Trace determinism across the sweep engine: the recorded timeline is part
// of a point's result, so the same grid must serialize to byte-identical
// MOBT blobs whether the sweep runs serially or on a thread pool.  Carries
// the "tsan" label with the rest of the explore suite (MERM_SANITIZE=thread
// race-checks the per-point sink confinement).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "explore/sweep.hpp"
#include "gen/apps.hpp"
#include "obs/binary_trace.hpp"

namespace merm::explore {
namespace {

Sweep build_traced_grid() {
  Sweep sweep;
  sweep.workload = [](const machine::MachineParams& params, std::uint64_t) {
    return gen::make_offline_workload(
        params.node_count(),
        [](gen::Annotator& a, trace::NodeId self, std::uint32_t nodes) {
          gen::stencil_spmd(a, self, nodes, gen::StencilParams{16, 2});
        });
  };
  sweep.add(machine::presets::t805_multicomputer(2, 1), "t805-2x1");
  sweep.add(machine::presets::t805_multicomputer(2, 2), "t805-2x2");
  sweep.add(machine::presets::generic_risc(2, 2), "risc-2x2");
  sweep.add(machine::presets::ipsc860_hypercube(4), "ipsc860-4");
  // Every point records; each worker writes only its own blob slot.
  sweep.configure = [](core::Workbench& wb, const ExperimentPoint&,
                       std::size_t) { wb.enable_tracing(); };
  return sweep;
}

std::vector<std::string> traced_blobs(const Sweep& base, unsigned threads) {
  Sweep sweep = base;
  std::vector<std::string> blobs(sweep.size());
  sweep.inspect = [&blobs](core::Workbench&, const core::RunResult& r,
                           std::size_t index) {
    ASSERT_NE(r.trace, nullptr);
    std::ostringstream os;
    obs::write_binary_trace(os, *r.trace);
    blobs[index] = os.str();
  };
  SweepEngine engine({.threads = threads});
  const SweepResult result = engine.run(sweep);
  for (const PointResult& p : result.points) {
    EXPECT_TRUE(p.done()) << p.label << ": " << p.error;
  }
  return blobs;
}

TEST(SweepTraceDeterminismTest, SerialAndThreadedTracesByteIdentical) {
  const Sweep sweep = build_traced_grid();
  const std::vector<std::string> serial = traced_blobs(sweep, 1);
  ASSERT_EQ(serial.size(), 4u);
  for (const std::string& blob : serial) {
    EXPECT_FALSE(blob.empty());
  }
  for (const unsigned threads : {2u, 4u}) {
    const std::vector<std::string> parallel = traced_blobs(sweep, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i])
          << "trace for point " << i << " diverged on " << threads
          << " thread(s)";
    }
  }
}

TEST(SweepTraceDeterminismTest, HostMetricsStayOptIn) {
  // Default output must not grow host columns: they are nondeterministic
  // and would break serial-vs-threaded byte comparisons of the CSV.
  const Sweep sweep = build_traced_grid();
  const SweepResult plain = SweepEngine({.threads = 2}).run(sweep);
  std::ostringstream plain_csv;
  plain.write_csv(plain_csv);
  EXPECT_EQ(plain_csv.str().find("host."), std::string::npos);

  const SweepResult with_host =
      SweepEngine({.threads = 2, .host_metrics = true}).run(sweep);
  std::ostringstream host_csv;
  with_host.write_csv(host_csv);
  for (const char* col : {"host.launch_s", "host.run_s", "host.events_per_s",
                          "host.peak_queue"}) {
    EXPECT_NE(host_csv.str().find(col), std::string::npos) << col;
  }
  for (const PointResult& p : with_host.points) {
    ASSERT_TRUE(p.done());
    EXPECT_GT(p.run.peak_queue_depth, 0u) << p.label;
  }
}

}  // namespace
}  // namespace merm::explore
