// Wait-state analyzer tests: aggregation over a hand-built timeline, the
// deterministic top-K ordering, and a golden-file check of the full report
// for the tiny 2-node ping-pong run (same determinism argument as the
// Chrome-export golden: simulated time only, fixed formatting).
//
// Regenerate the golden after an intentional format change with
//   MERM_UPDATE_GOLDEN=1 ./tests/obs_trace_stats_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/workbench.hpp"
#include "gen/apps.hpp"
#include "obs/trace.hpp"
#include "obs/trace_stats.hpp"

namespace merm::obs {
namespace {

TraceData sample_data() {
  TraceSink sink;
  const TrackId cpu = sink.add_track("node0.cpu0");
  const TrackId comm = sink.add_track("node0.comm");
  const TrackId net = sink.add_track("node0.net");
  sink.span(cpu, SpanKind::kCompute, 0, 500);
  sink.span(cpu, SpanKind::kCompute, 600, 700);
  sink.span(cpu, SpanKind::kBusWait, 500, 600);
  sink.span(comm, SpanKind::kRecvBlock, 100, 400);
  sink.span(net, SpanKind::kLinkTransit, 150, 350);
  sink.instant(net, SpanKind::kNicRetry, 200);
  sink.instant(net, SpanKind::kDrop, 210);
  sink.open(comm, SpanKind::kSendBlock, 800);
  sink.seal(1000, true);
  return sink.to_data();
}

TEST(TraceStatsTest, AggregatesKindsTracksAndInstants) {
  const TraceStats s = TraceStats::compute(sample_data());
  EXPECT_EQ(s.sealed_at, 1000u);
  EXPECT_TRUE(s.hung);
  EXPECT_EQ(s.events, 8u);
  EXPECT_EQ(s.spans, 6u);  // the open span counts as a span
  EXPECT_EQ(s.instants, 2u);
  EXPECT_EQ(s.open_spans, 1u);

  const auto kind_time = [&s](SpanKind k) {
    return s.kinds[static_cast<std::size_t>(k)].time;
  };
  EXPECT_EQ(kind_time(SpanKind::kCompute), 600u);
  EXPECT_EQ(kind_time(SpanKind::kBusWait), 100u);
  EXPECT_EQ(kind_time(SpanKind::kRecvBlock), 300u);
  EXPECT_EQ(kind_time(SpanKind::kLinkTransit), 200u);
  // An open span runs to the seal point.
  EXPECT_EQ(kind_time(SpanKind::kSendBlock), 200u);
  EXPECT_EQ(s.kinds[static_cast<std::size_t>(SpanKind::kNicRetry)].instants,
            1u);

  ASSERT_EQ(s.tracks.size(), 3u);
  EXPECT_EQ(s.tracks[0].name, "node0.cpu0");
  EXPECT_EQ(s.tracks[0].time, 700u);
  EXPECT_EQ(s.tracks[0].events, 3u);
  EXPECT_EQ(s.tracks[1].time, 500u);  // 300 recv-block + 200 open send-block
}

TEST(TraceStatsTest, TopKOrdersByDurationThenPosition) {
  const TraceStats s = TraceStats::compute(sample_data(), {.top_k = 3});
  ASSERT_EQ(s.top.size(), 3u);
  EXPECT_EQ(s.top[0].duration, 500u);
  EXPECT_EQ(s.top[0].kind, SpanKind::kCompute);
  EXPECT_EQ(s.top[1].duration, 300u);
  EXPECT_EQ(s.top[1].kind, SpanKind::kRecvBlock);
  EXPECT_EQ(s.top[2].duration, 200u);
  // 200-tick tie (link-transit at 150 vs open send-block at 800): earlier
  // begin wins, deterministically.
  EXPECT_EQ(s.top[2].kind, SpanKind::kLinkTransit);
  EXPECT_EQ(s.top[2].begin, 150u);
}

TEST(TraceStatsTest, ReportIsReproducible) {
  std::ostringstream a, b;
  write_trace_stats(a, sample_data());
  write_trace_stats(b, sample_data());
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("HUNG"), std::string::npos);
  EXPECT_NE(a.str().find("open at seal"), std::string::npos);
}

std::string pingpong_stats_report() {
  core::Workbench wb(machine::presets::t805_multicomputer(2, 1));
  wb.enable_tracing();
  auto workload = gen::make_offline_workload(
      2, [](gen::Annotator& a, trace::NodeId self, std::uint32_t nodes) {
        gen::pingpong(a, self, nodes, gen::PingPongParams{2, 64});
      });
  const core::RunResult r = wb.run_detailed(workload);
  EXPECT_TRUE(r.completed);
  EXPECT_NE(r.trace, nullptr);
  std::ostringstream os;
  write_trace_stats(os, *r.trace, {.top_k = 5});
  return os.str();
}

TEST(TraceStatsTest, GoldenPingPongReport) {
  const std::string got = pingpong_stats_report();
  const std::string path = std::string(MERM_GOLDEN_DIR) + "/pingpong_stats.txt";

  if (std::getenv("MERM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "golden updated: " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " (regenerate with MERM_UPDATE_GOLDEN=1)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "wait-state report changed; if intentional, regenerate with "
         "MERM_UPDATE_GOLDEN=1 and review the diff";
}

}  // namespace
}  // namespace merm::obs
