// MetricsRegistry tests: sharded recording, merge-on-snapshot, the
// Prometheus/JSON expositions, and the concurrency contract (scraping
// while workers record is race-free; run under `ctest -L tsan` with a
// MERM_SANITIZE=thread build to have TSan check that claim).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace merm::obs {
namespace {

TEST(MetricsCounterTest, SumsAcrossThreads) {
  MetricsRegistry reg;
  Counter& c = reg.counter("merm_test_ops_total", "ops");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(MetricsGaugeTest, SetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("merm_test_busy");
  g.set(3.0);
  g.add(2.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(MetricsHistogramTest, BucketsAreInclusiveUpperBounds) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("merm_test_latency", {0.1, 1.0, 10.0});
  h.observe(0.1);   // on a bound -> that bucket (le is inclusive)
  h.observe(0.05);  // first bucket
  h.observe(5.0);   // third bucket
  h.observe(99.0);  // +Inf bucket
  const Histogram::View v = h.view();
  ASSERT_EQ(v.counts.size(), 4u);
  EXPECT_EQ(v.counts[0], 2u);
  EXPECT_EQ(v.counts[1], 0u);
  EXPECT_EQ(v.counts[2], 1u);
  EXPECT_EQ(v.counts[3], 1u);
  EXPECT_EQ(v.count, 4u);
  EXPECT_NEAR(v.sum, 0.1 + 0.05 + 5.0 + 99.0, 1e-9);
}

TEST(MetricsHistogramTest, QuantileInterpolatesAndClampsAtInf) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("merm_test_q", {1.0, 2.0, 4.0});
  for (int i = 0; i < 10; ++i) h.observe(0.5);  // all in (0, 1]
  const Histogram::View v = h.view();
  // Median of a bucket spanning (0, 1] interpolates to its middle.
  EXPECT_NEAR(v.quantile(0.5), 0.5, 1e-9);
  EXPECT_NEAR(v.quantile(1.0), 1.0, 1e-9);

  Histogram& inf = reg.histogram("merm_test_q_inf", {1.0, 2.0});
  for (int i = 0; i < 10; ++i) inf.observe(100.0);  // all in +Inf
  // +Inf observations clamp to the last finite bound (Prometheus semantics).
  EXPECT_DOUBLE_EQ(inf.view().quantile(0.9), 2.0);

  EXPECT_EQ(reg.histogram("merm_test_q_empty", {1.0}).view().quantile(0.5),
            0.0);
}

TEST(MetricsHistogramTest, RejectsUnsortedBounds) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("merm_test_bad", {2.0, 1.0}), std::logic_error);
  EXPECT_THROW(reg.histogram("merm_test_dup", {1.0, 1.0}), std::logic_error);
}

TEST(MetricsRegistryTest, ReregisteringReturnsTheSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("merm_test_shared_total", "", {{"job", "x"}});
  Counter& b = reg.counter("merm_test_shared_total", "", {{"job", "x"}});
  EXPECT_EQ(&a, &b);  // the daemon and the sweep engine share one series
  Counter& other = reg.counter("merm_test_shared_total", "", {{"job", "y"}});
  EXPECT_NE(&a, &other);
  EXPECT_EQ(reg.find_counter("merm_test_shared_total", {{"job", "x"}}), &a);
  EXPECT_EQ(reg.find_counter("merm_test_absent_total"), nullptr);
}

TEST(MetricsRegistryTest, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("merm_test_kind");
  EXPECT_THROW(reg.gauge("merm_test_kind"), std::logic_error);
  EXPECT_THROW(reg.histogram("merm_test_kind", {1.0}), std::logic_error);
}

TEST(MetricsRegistryTest, HistogramBoundsMismatchThrows) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("merm_test_bounds", {0.5, 1.0});
  // Same bounds re-register and share the series; different bounds would
  // silently record into a differently shaped histogram, so they throw.
  EXPECT_EQ(&reg.histogram("merm_test_bounds", {0.5, 1.0}), &h);
  EXPECT_THROW(reg.histogram("merm_test_bounds", {0.5, 2.0}),
               std::logic_error);
  EXPECT_THROW(reg.histogram("merm_test_bounds", {0.5}), std::logic_error);
}

TEST(MetricsHistogramTest, IgnoresNonFiniteObservations) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("merm_test_nonfinite", {1.0});
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(std::numeric_limits<double>::infinity());
  h.observe(-std::numeric_limits<double>::infinity());
  h.observe(0.5);
  const Histogram::View v = h.view();
  EXPECT_EQ(v.count, 1u);
  EXPECT_DOUBLE_EQ(v.sum, 0.5);  // a NaN observation must not poison _sum
}

// Regression for a registration race: two threads registering the same
// (name, labels) concurrently must converge on one fully built instrument
// (the entry is allocated under the registry mutex before it's published).
TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      Counter& c = reg.counter("merm_test_race_total", "", {{"job", "x"}});
      c.add();
      seen[static_cast<std::size_t>(t)] = &c;
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[t]);
  EXPECT_EQ(seen[0]->value(), static_cast<std::uint64_t>(kThreads));
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("merm_test_ops_total", "Operations executed").add(7);
  reg.gauge("merm_test_busy", "Busy workers").set(2);
  Histogram& h =
      reg.histogram("merm_test_seconds", {0.5, 1.0}, "Point latency",
                    {{"job", "ab"}});
  h.observe(0.25);
  h.observe(0.75);
  h.observe(9.0);

  const std::string text = reg.prometheus();
  EXPECT_NE(text.find("# HELP merm_test_ops_total Operations executed\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE merm_test_ops_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("merm_test_ops_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE merm_test_busy gauge\n"), std::string::npos);
  EXPECT_NE(text.find("merm_test_busy 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE merm_test_seconds histogram\n"),
            std::string::npos);
  // Buckets are cumulative and end at +Inf == _count.
  EXPECT_NE(text.find("merm_test_seconds_bucket{job=\"ab\",le=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("merm_test_seconds_bucket{job=\"ab\",le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("merm_test_seconds_bucket{job=\"ab\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("merm_test_seconds_sum{job=\"ab\"} 10\n"),
            std::string::npos);
  EXPECT_NE(text.find("merm_test_seconds_count{job=\"ab\"} 3\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, JsonExposition) {
  MetricsRegistry reg;
  reg.counter("merm_test_ops_total").add(3);
  reg.gauge("merm_test_nan").set(std::numeric_limits<double>::quiet_NaN());
  Histogram& h = reg.histogram("merm_test_seconds", {1.0});
  h.observe(0.5);

  const std::string json = reg.json();
  EXPECT_NE(json.find("{\"name\":\"merm_test_ops_total\",\"type\":\"counter\""
                      ",\"value\":3}"),
            std::string::npos);
  // JSON has no NaN literal; non-finite gauges become null.
  EXPECT_NE(json.find("\"name\":\"merm_test_nan\",\"type\":\"gauge\""
                      ",\"value\":null"),
            std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[{\"le\":1,\"count\":1},"
                      "{\"le\":\"+Inf\",\"count\":1}]"),
            std::string::npos);
}

TEST(MetricsRegistryTest, IdleSnapshotsAreByteIdentical) {
  MetricsRegistry reg;
  reg.counter("merm_test_b_total", "b").add(2);
  reg.counter("merm_test_a_total", "a").add(1);
  reg.gauge("merm_test_g").set(1.5);
  reg.histogram("merm_test_h", {0.5, 1.0}, "h", {{"k", "v"}}).observe(0.7);

  const std::string p1 = reg.prometheus();
  const std::string p2 = reg.prometheus();
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(reg.json(), reg.json());
  // Families come out name-sorted regardless of registration order.
  EXPECT_LT(p1.find("merm_test_a_total"), p1.find("merm_test_b_total"));
}

TEST(MetricsRegistryTest, LabelValuesAreEscaped) {
  MetricsRegistry reg;
  reg.counter("merm_test_esc_total", "", {{"p", "a\"b\\c\nd"}}).add(1);
  const std::string text = reg.prometheus();
  EXPECT_NE(text.find("merm_test_esc_total{p=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

// The core concurrency contract: scrape while eight threads hammer every
// instrument kind.  Correctness assert is just "totals add up at the end";
// the real check is TSan finding no race on the shared shards.
TEST(MetricsRegistryTest, SnapshotWhileRecordingIsRaceFree) {
  MetricsRegistry reg;
  Counter& c = reg.counter("merm_test_hot_total");
  Gauge& g = reg.gauge("merm_test_hot_gauge");
  Histogram& h = reg.histogram("merm_test_hot_seconds", {0.25, 0.5, 1.0});

  constexpr int kThreads = 8;
  constexpr int kIters = 5'000;
  std::atomic<int> running{kThreads};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.add();
        g.set(static_cast<double>(t));
        h.observe(static_cast<double>(i % 4) * 0.3);
      }
      running.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  while (running.load(std::memory_order_relaxed) > 0) {
    const std::string text = reg.prometheus();
    EXPECT_NE(text.find("merm_test_hot_total"), std::string::npos);
    (void)reg.json();
  }
  for (auto& w : writers) w.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  const Histogram::View v = h.view();
  EXPECT_EQ(v.count, static_cast<std::uint64_t>(kThreads) * kIters);
  // A mid-flight scrape may see partial state, but never a torn one: the
  // final view's buckets must sum exactly to the count.
  std::uint64_t total = 0;
  for (std::uint64_t b : v.counts) total += b;
  EXPECT_EQ(total, v.count);
}

}  // namespace
}  // namespace merm::obs
