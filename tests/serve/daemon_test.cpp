// The sweep service end to end, in process: a Server on a background
// thread, real unix-socket clients.  Covers the tentpole guarantees —
// fetched results byte-identical to the batch engine, duplicate submissions
// attaching, overlapping grids hitting the shared memo store, malformed
// frames answered (not crashed on), cancellation, and spool recovery after
// a shutdown mid-job.  The SIGKILL variant of recovery lives in
// scripts/check.sh (a daemon cannot kill -9 itself from inside gtest).
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "explore/sweep.hpp"
#include "serve/client.hpp"
#include "serve/job.hpp"

namespace merm::serve {
namespace {

std::string make_temp_dir(const char* tag) {
  std::string tmpl = ::testing::TempDir() + tag + std::string("-XXXXXX");
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* dir = ::mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? dir : "";
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

constexpr const char* kTinyWorkload =
    "rounds = 1\ninstructions_per_round = 2000\n";

JobSpec tiny_spec(std::vector<std::string> machines) {
  JobSpec spec;
  spec.machines = std::move(machines);
  spec.workload_text = kTinyWorkload;
  spec.isolate = false;  // in-process points keep the suite fast
  return spec;
}

/// Reference bytes: the batch engine on the same spec, host columns off —
/// what `mermaid_cli sweep --no-host-columns` would write.
std::string batch_csv(JobSpec spec) {
  spec.stall_ms = 0;  // the stall is a timing hook, not part of the result
  const explore::Sweep sweep = build_sweep(spec);
  explore::SweepOptions opts = engine_options(spec);
  const explore::SweepResult result = explore::SweepEngine(opts).run(sweep);
  std::ostringstream os;
  result.write_csv(os, {.host_columns = false});
  return os.str();
}

/// A live daemon on a background thread, torn down on scope exit.
class Daemon {
 public:
  explicit Daemon(const std::string& dir, unsigned workers = 1,
                  const std::string& metrics_file = std::string(),
                  double metrics_interval_s = 0.05) {
    ServerOptions opts;
    opts.socket_path = dir + "/merm.sock";
    opts.spool = dir + "/spool";
    opts.job_workers = workers;
    opts.metrics_file = metrics_file;
    opts.metrics_interval_s = metrics_interval_s;
    server_ = std::make_unique<Server>(opts);
    server_->start();
    thread_ = std::thread([this] { server_->run(); });
  }

  ~Daemon() { stop(); }

  void stop() {
    if (server_ != nullptr) server_->request_shutdown();
    if (thread_.joinable()) thread_.join();
    server_.reset();
  }

  const std::string& socket() const { return server_->options().socket_path; }
  Server& server() { return *server_; }

 private:
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

Json request(const std::string& socket, const Json& req) {
  return Client(socket).request(req);
}

Json submit(const std::string& socket, const JobSpec& spec) {
  Json req = spec.to_json();
  req.set("cmd", Json("submit"));
  return request(socket, req);
}

Json job_status(const std::string& socket, const std::string& id) {
  Json req = Json::object();
  req.set("cmd", Json("status"));
  req.set("job", Json(id));
  return request(socket, req);
}

/// Polls until the job reaches a terminal state; returns the final frame.
Json await_job(const std::string& socket, const std::string& id,
               int timeout_ms = 30'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const Json st = job_status(socket, id);
    const std::string state = st.get_string("state");
    if (state != "queued" && state != "running") return st;
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "job " << id << " stuck in state " << state;
      return st;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

std::string fetch_csv(const std::string& socket, const std::string& id) {
  Json req = Json::object();
  req.set("cmd", Json("results"));
  req.set("job", Json(id));
  req.set("format", Json("csv"));
  const Json r = request(socket, req);
  EXPECT_TRUE(r.get_bool("ok")) << r.get_string("error");
  return r.get_string("data");
}

/// Writes raw bytes to the daemon socket and returns the first reply line
/// (empty on EOF/timeout) — for frames a well-behaved Client cannot send.
std::string raw_request(const std::string& socket, const std::string& bytes) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  struct sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)),
      0);
  EXPECT_EQ(::write(fd, bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  LineReader reader(fd, kMaxFrameBytes, 5000);
  std::string line;
  const LineReader::Status st = reader.next(&line);
  ::close(fd);
  return st == LineReader::Status::kLine ? line : std::string();
}

TEST(DaemonTest, SubmitRunFetchMatchesTheBatchEngineByteForByte) {
  const std::string dir = make_temp_dir("merm-daemon-fetch");
  Daemon daemon(dir);
  const JobSpec spec =
      tiny_spec({"preset:t805:2x1", "preset:risc:2x1", "preset:ipsc860:2x1"});

  const Json r = submit(daemon.socket(), spec);
  ASSERT_TRUE(r.get_bool("ok")) << r.get_string("error");
  const std::string id = r.get_string("job");
  EXPECT_EQ(id, job_id(spec));  // the job id IS the grid hash
  EXPECT_EQ(r.get_number("total"), 3.0);

  const Json done = await_job(daemon.socket(), id);
  EXPECT_EQ(done.get_string("state"), "done");
  EXPECT_EQ(done.get_number("done"), 3.0);
  EXPECT_EQ(done.get_number("failed"), 0.0);

  EXPECT_EQ(fetch_csv(daemon.socket(), id), batch_csv(spec));
}

TEST(DaemonTest, DuplicateSubmissionsAttachInsteadOfRerunning) {
  const std::string dir = make_temp_dir("merm-daemon-dup");
  Daemon daemon(dir);
  const JobSpec spec = tiny_spec({"preset:t805:2x1"});

  const Json first = submit(daemon.socket(), spec);
  ASSERT_TRUE(first.get_bool("ok"));
  EXPECT_FALSE(first.get_bool("attached"));
  const std::string id = first.get_string("job");
  (void)await_job(daemon.socket(), id);

  const Json second = submit(daemon.socket(), spec);
  ASSERT_TRUE(second.get_bool("ok"));
  EXPECT_TRUE(second.get_bool("attached"));
  EXPECT_EQ(second.get_string("job"), id);

  Json sreq = Json::object();
  sreq.set("cmd", Json("status"));
  const Json server_st = request(daemon.socket(), sreq);
  EXPECT_EQ(server_st.get_number("submissions"), 2.0);
  EXPECT_EQ(server_st.get_number("attached"), 1.0);
  EXPECT_EQ(server_st.get_number("jobs"), 1.0);
}

TEST(DaemonTest, OverlappingGridsHitTheSharedMemoStore) {
  const std::string dir = make_temp_dir("merm-daemon-memo");
  Daemon daemon(dir);
  const JobSpec a = tiny_spec({"preset:t805:2x1", "preset:risc:2x1"});
  const JobSpec b = tiny_spec({"preset:risc:2x1", "preset:ipsc860:2x1"});

  const std::string id_a = submit(daemon.socket(), a).get_string("job");
  (void)await_job(daemon.socket(), id_a);
  const std::string id_b = submit(daemon.socket(), b).get_string("job");
  const Json done_b = await_job(daemon.socket(), id_b);

  // The shared risc:2x1 point replays from the store: content-derived
  // seeds make the overlap a hit even though the grids differ.
  EXPECT_EQ(done_b.get_number("memo_hits"), 1.0);
  EXPECT_EQ(fetch_csv(daemon.socket(), id_b), batch_csv(b));

  Json sreq = Json::object();
  sreq.set("cmd", Json("status"));
  const Json st = request(daemon.socket(), sreq);
  EXPECT_EQ(st.get_number("memo_hits"), 1.0);
  EXPECT_EQ(st.get_number("memo_misses"), 3.0);
}

TEST(DaemonTest, MalformedFramesGetErrorsAndTheDaemonSurvives) {
  const std::string dir = make_temp_dir("merm-daemon-garbage");
  Daemon daemon(dir);

  const char* garbage[] = {
      "not json at all\n",
      "{\"cmd\": \"submit\"\n",           // truncated object
      "{\"cmd\": 42}\n",                  // mistyped cmd
      "{\"cmd\": \"frobnicate\"}\n",      // unknown cmd
      "{}\n",                             // missing cmd
      "{\"cmd\":\"submit\"}\n",           // submit without a grid
      "{\"cmd\":\"status\",\"job\":\"feedbeef\"}\n",  // unknown job
      "{\"cmd\":\"results\",\"job\":\"feedbeef\"}\n",
      "\n",                               // empty frame
  };
  for (const char* frame : garbage) {
    const std::string reply = raw_request(daemon.socket(), frame);
    ASSERT_FALSE(reply.empty()) << "no reply to: " << frame;
    const Json r = Json::parse(reply);
    EXPECT_FALSE(r.get_bool("ok")) << "accepted: " << frame;
    EXPECT_FALSE(r.get_string("error").empty());
  }

  // An oversized frame gets an error too (then the connection drops —
  // byte-stream desync is unrecoverable).
  std::string huge = "{\"cmd\":\"submit\",\"workload\":\"";
  huge.append(kMaxFrameBytes + 1024, 'x');
  const std::string reply = raw_request(daemon.socket(), huge);
  ASSERT_FALSE(reply.empty());
  EXPECT_FALSE(Json::parse(reply).get_bool("ok"));

  // After all of that, the daemon still runs real jobs.
  const JobSpec spec = tiny_spec({"preset:t805:2x1"});
  const std::string id = submit(daemon.socket(), spec).get_string("job");
  EXPECT_EQ(await_job(daemon.socket(), id).get_string("state"), "done");
}

TEST(DaemonTest, CancelStopsAJobAndResubmitRequeuesIt) {
  const std::string dir = make_temp_dir("merm-daemon-cancel");
  Daemon daemon(dir);
  JobSpec spec = tiny_spec({"preset:t805:2x1", "preset:risc:2x1",
                            "preset:ipsc860:2x1", "preset:t805:2x2"});
  spec.stall_ms = 200;  // a window to cancel inside

  const std::string id = submit(daemon.socket(), spec).get_string("job");
  Json creq = Json::object();
  creq.set("cmd", Json("cancel"));
  creq.set("job", Json(id));
  const Json cr = request(daemon.socket(), creq);
  ASSERT_TRUE(cr.get_bool("ok"));

  const Json st = await_job(daemon.socket(), id);
  EXPECT_EQ(st.get_string("state"), "cancelled");
  EXPECT_LT(st.get_number("done"), 4.0);

  // Results are refused while incomplete...
  Json rreq = Json::object();
  rreq.set("cmd", Json("results"));
  rreq.set("job", Json(id));
  EXPECT_FALSE(request(daemon.socket(), rreq).get_bool("ok"));

  // ...and resubmitting the same spec requeues (resumes) rather than
  // attaching to the cancelled carcass.
  const Json again = submit(daemon.socket(), spec);
  ASSERT_TRUE(again.get_bool("ok"));
  EXPECT_TRUE(again.get_bool("requeued"));
  const Json done = await_job(daemon.socket(), id);
  EXPECT_EQ(done.get_string("state"), "done");
  EXPECT_EQ(done.get_number("done"), 4.0);
  EXPECT_EQ(fetch_csv(daemon.socket(), id), batch_csv(spec));
}

TEST(DaemonTest, ShutdownMidJobThenRestartResumesFromTheSpool) {
  const std::string dir = make_temp_dir("merm-daemon-resume");
  JobSpec spec = tiny_spec({"preset:t805:2x1", "preset:risc:2x1",
                            "preset:ipsc860:2x1", "preset:t805:2x2",
                            "preset:risc:2x2", "preset:ipsc860:2x2"});
  spec.stall_ms = 250;
  const std::string id = job_id(spec);

  {
    Daemon daemon(dir);
    ASSERT_TRUE(submit(daemon.socket(), spec).get_bool("ok"));
    // Let at least one row land in the journal, then wind down mid-job.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      const Json st = job_status(daemon.socket(), id);
      if (st.get_number("done") >= 1.0) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "job never started";
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    daemon.stop();
  }

  const std::string job_dir = spool_job_dir(dir + "/spool", id);
  EXPECT_TRUE(file_exists(job_dir + "/spec.json"));
  EXPECT_TRUE(file_exists(job_dir + "/sweep.journal"));
  ASSERT_FALSE(file_exists(job_dir + "/result.csv"))
      << "job finished before the shutdown; the resume path was not hit";

  // A fresh daemon on the same spool recovers and finishes the job without
  // being asked.
  Daemon daemon(dir);
  const Json done = await_job(daemon.socket(), id);
  EXPECT_EQ(done.get_string("state"), "done");
  EXPECT_EQ(done.get_number("done"), 6.0);
  EXPECT_GE(done.get_number("resumed"), 1.0);
  EXPECT_EQ(fetch_csv(daemon.socket(), id), batch_csv(spec));
}

TEST(DaemonTest, FinishedJobsSurviveRestartWithTheirResults) {
  const std::string dir = make_temp_dir("merm-daemon-warm");
  const JobSpec spec = tiny_spec({"preset:t805:2x1", "preset:risc:2x1"});
  const std::string id = job_id(spec);
  std::string first_bytes;
  {
    Daemon daemon(dir);
    ASSERT_TRUE(submit(daemon.socket(), spec).get_bool("ok"));
    (void)await_job(daemon.socket(), id);
    first_bytes = fetch_csv(daemon.socket(), id);
  }
  Daemon daemon(dir);
  const Json st = job_status(daemon.socket(), id);
  EXPECT_EQ(st.get_string("state"), "done");
  EXPECT_EQ(st.get_number("done"), 2.0);
  EXPECT_EQ(fetch_csv(daemon.socket(), id), first_bytes);
  // And a resubmission attaches to the recovered job, serving from cache.
  const Json again = submit(daemon.socket(), spec);
  EXPECT_TRUE(again.get_bool("attached"));
}

TEST(DaemonTest, ServerStatusReportsUptimeAndWorkerPool) {
  const std::string dir = make_temp_dir("merm-daemon-pool");
  Daemon daemon(dir);

  Json req = Json::object();
  req.set("cmd", Json("status"));
  const Json idle = request(daemon.socket(), req);
  ASSERT_TRUE(idle.get_bool("ok"));
  EXPECT_GE(idle.get_number("uptime_s"), 0.0);
  EXPECT_EQ(idle.get_number("workers_total"), 1.0);
  EXPECT_EQ(idle.get_number("workers_busy"), 0.0);

  // A stalled job holds the one worker busy long enough to observe it.
  JobSpec spec = tiny_spec({"preset:t805:2x1", "preset:risc:2x1"});
  spec.stall_ms = 200;
  ASSERT_TRUE(submit(daemon.socket(), spec).get_bool("ok"));
  bool saw_busy = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!saw_busy && std::chrono::steady_clock::now() < deadline) {
    const Json st = request(daemon.socket(), req);
    saw_busy = st.get_number("workers_busy") == 1.0;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(saw_busy) << "never observed the worker running the job";

  (void)await_job(daemon.socket(), job_id(spec));
  // Terminal job: the worker must return to the pool.
  bool idle_again = false;
  while (!idle_again && std::chrono::steady_clock::now() < deadline) {
    idle_again = request(daemon.socket(), req).get_number("workers_busy") == 0.0;
    if (!idle_again) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(idle_again);
}

TEST(DaemonTest, MetricsVerbExposesTheRegistry) {
  const std::string dir = make_temp_dir("merm-daemon-metrics");
  Daemon daemon(dir);
  const JobSpec spec = tiny_spec({"preset:t805:2x1"});
  const Json r = submit(daemon.socket(), spec);
  ASSERT_TRUE(r.get_bool("ok"));
  const std::string id = r.get_string("job");
  (void)await_job(daemon.socket(), id);

  Json req = Json::object();
  req.set("cmd", Json("metrics"));
  const Json prom = request(daemon.socket(), req);
  ASSERT_TRUE(prom.get_bool("ok")) << prom.get_string("error");
  EXPECT_EQ(prom.get_string("format"), "prometheus");
  const std::string text = prom.get_string("data");
  EXPECT_NE(text.find("# TYPE merm_serve_submissions_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("merm_serve_submissions_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("merm_serve_points_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("merm_serve_jobs_finished_total{state=\"done\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("merm_serve_jobs{state=\"done\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE merm_serve_uptime_seconds gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("merm_serve_workers 1\n"), std::string::npos);
  // The job's sweep recorded into the shared registry under {job=...}.
  const std::string label = "{job=\"" + id.substr(0, 12) + "\"";
  EXPECT_NE(text.find("merm_sweep_points_total" + label), std::string::npos);
  EXPECT_NE(text.find("merm_sweep_point_seconds_bucket" + label),
            std::string::npos);

  Json jreq = Json::object();
  jreq.set("cmd", Json("metrics"));
  jreq.set("format", Json("json"));
  const Json js = request(daemon.socket(), jreq);
  ASSERT_TRUE(js.get_bool("ok"));
  EXPECT_EQ(js.get_string("format"), "json");
  const std::string json = js.get_string("data");
  EXPECT_EQ(json.rfind("{\"metrics\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"merm_serve_uptime_seconds\""),
            std::string::npos);

  Json bad = Json::object();
  bad.set("cmd", Json("metrics"));
  bad.set("format", Json("xml"));
  EXPECT_FALSE(request(daemon.socket(), bad).get_bool("ok"));
}

TEST(DaemonTest, JobStatusReportsPointLatencyQuantiles) {
  const std::string dir = make_temp_dir("merm-daemon-latency");
  Daemon daemon(dir);
  const JobSpec spec = tiny_spec({"preset:t805:2x1", "preset:risc:2x1"});
  ASSERT_TRUE(submit(daemon.socket(), spec).get_bool("ok"));
  const Json done = await_job(daemon.socket(), job_id(spec));
  ASSERT_EQ(done.get_string("state"), "done");
  // Both points ran fresh, so the per-job latency histogram has samples and
  // the status frame carries its quantiles.
  const Json* p50 = done.find("point_p50_s");
  const Json* p90 = done.find("point_p90_s");
  ASSERT_NE(p50, nullptr);
  ASSERT_NE(p90, nullptr);
  EXPECT_GE(p50->as_number(), 0.0);
  EXPECT_GE(p90->as_number(), p50->as_number());
}

TEST(DaemonTest, MetricsFileIsWrittenAtomicallyOnAnInterval) {
  const std::string dir = make_temp_dir("merm-daemon-mfile");
  const std::string mfile = dir + "/metrics.prom";
  Daemon daemon(dir, 1, mfile, 0.05);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!file_exists(mfile) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(file_exists(mfile)) << "metrics file never published";

  const JobSpec spec = tiny_spec({"preset:t805:2x1"});
  ASSERT_TRUE(submit(daemon.socket(), spec).get_bool("ok"));
  (void)await_job(daemon.socket(), job_id(spec));

  // The rewrite loop must eventually publish the finished job; every
  // observed snapshot is complete (tmp + rename, never a partial file).
  std::string text;
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(mfile, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
    if (text.find("merm_serve_jobs_finished_total{state=\"done\"} 1\n") !=
        std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(text.find("merm_serve_jobs_finished_total{state=\"done\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE merm_serve_uptime_seconds gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("merm_serve_workers 1\n"), std::string::npos);
}

}  // namespace
}  // namespace merm::serve
