// The service wire codec under hostile input: round-trips, truncated and
// oversized frames, garbage bytes, type confusion, nesting bombs.  The bar
// is structural — every malformed input becomes a ProtocolError (or a
// LineReader status), never a crash and never a silently wrong value.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace merm::serve {
namespace {

TEST(ProtocolJsonTest, DumpParseRoundTripsStructures) {
  Json obj = Json::object();
  obj.set("cmd", Json("submit"));
  obj.set("count", Json(42));
  obj.set("ratio", Json(0.375));
  obj.set("flag", Json(true));
  obj.set("nothing", Json());
  Json arr = Json::array();
  arr.push(Json("a"));
  arr.push(Json(std::string("tab\there \"quoted\" back\\slash\nnewline")));
  arr.push(Json(-7));
  obj.set("items", std::move(arr));

  const Json back = Json::parse(obj.dump());
  EXPECT_EQ(back.dump(), obj.dump());
  EXPECT_EQ(back.get_string("cmd"), "submit");
  EXPECT_EQ(back.get_number("count"), 42.0);
  EXPECT_EQ(back.get_number("ratio"), 0.375);
  EXPECT_TRUE(back.get_bool("flag"));
  EXPECT_TRUE(back.find("nothing")->is_null());
  const std::vector<Json>& items = back.find("items")->items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[1].as_string(), "tab\there \"quoted\" back\\slash\nnewline");
  EXPECT_EQ(items[2].as_number(), -7.0);
}

TEST(ProtocolJsonTest, ControlAndUnicodeEscapesRoundTrip) {
  std::string nasty;
  for (int c = 0; c < 32; ++c) nasty.push_back(static_cast<char>(c));
  nasty += "plain";
  const Json j(nasty);
  EXPECT_EQ(Json::parse(j.dump()).as_string(), nasty);

  // \uXXXX escapes decode to UTF-8 (including a two-escape surrogate-free
  // BMP character).
  EXPECT_EQ(Json::parse("\"\\u0041\\u00e9\\u4e2d\"").as_string(),
            "A\xc3\xa9\xe4\xb8\xad");
}

TEST(ProtocolJsonTest, IntegersPrintExactly) {
  Json j = Json::object();
  j.set("big", Json(std::uint64_t{1} << 50));
  const std::string text = j.dump();
  EXPECT_NE(text.find("1125899906842624"), std::string::npos) << text;
  EXPECT_EQ(Json::parse(text).get_number("big"),
            static_cast<double>(std::uint64_t{1} << 50));
}

TEST(ProtocolJsonTest, MalformedInputsThrowNotCrash) {
  const char* cases[] = {
      "",
      "   ",
      "{",
      "}",
      "{\"a\":}",
      "{\"a\":1,}",
      "{\"a\" 1}",
      "{'a': 1}",
      "[1,",
      "[1 2]",
      "\"unterminated",
      "\"bad escape \\q\"",
      "\"bad unicode \\u12g4\"",
      "tru",
      "nul",
      "+1",
      "1.2.3",
      "0x10",
      "{\"a\":1} trailing",
      "\x00\xff\xfe garbage",
      "{\"a\": \x01}",
  };
  for (const char* text : cases) {
    EXPECT_THROW((void)Json::parse(text), ProtocolError) << "input: " << text;
  }
}

TEST(ProtocolJsonTest, NestingBombIsRejectedNotRecursedToDeath) {
  std::string bomb(100'000, '[');
  EXPECT_THROW((void)Json::parse(bomb), ProtocolError);
  // And a *complete* deep value past the limit is rejected too.
  std::string deep = std::string(kMaxJsonDepth + 1, '[') + "1" +
                     std::string(kMaxJsonDepth + 1, ']');
  EXPECT_THROW((void)Json::parse(deep), ProtocolError);
  // At the limit it parses.
  std::string ok = std::string(kMaxJsonDepth, '[') + "1" +
                   std::string(kMaxJsonDepth, ']');
  EXPECT_NO_THROW((void)Json::parse(ok));
}

TEST(ProtocolJsonTest, TypeConfusionThrowsInsteadOfCoercing) {
  const Json j = Json::parse(
      "{\"s\": \"text\", \"n\": 3, \"b\": true, \"a\": [1], \"o\": {}}");
  EXPECT_THROW((void)j.get_number("s"), ProtocolError);
  EXPECT_THROW((void)j.get_string("n"), ProtocolError);
  EXPECT_THROW((void)j.get_bool("n"), ProtocolError);
  EXPECT_THROW((void)j.get_string_list("s"), ProtocolError);
  EXPECT_THROW((void)j.get_string_list("o"), ProtocolError);
  // An array of non-strings is not a string list.
  EXPECT_THROW((void)j.get_string_list("a"), ProtocolError);
  // Absent keys yield defaults.
  EXPECT_EQ(j.get_string("missing", "def"), "def");
  EXPECT_EQ(j.get_number("missing", 9.0), 9.0);
  EXPECT_TRUE(j.get_string_list("missing").empty());
}

/// Deterministic pseudo-fuzz: mutate a valid frame at xorshift-chosen
/// positions; parse must either succeed or throw ProtocolError — anything
/// else (crash, uncaught foreign exception) fails the test harness itself.
TEST(ProtocolJsonTest, MutatedFramesNeverEscapeTheErrorContract) {
  const std::string seed_frame =
      "{\"cmd\":\"submit\",\"machines\":[\"preset:t805:2x2\"],"
      "\"workload\":\"rounds = 1\",\"isolate\":true,\"timeout_s\":1.5}";
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  int parsed = 0, rejected = 0;
  for (int round = 0; round < 2000; ++round) {
    std::string frame = seed_frame;
    const int mutations = 1 + static_cast<int>(next() % 4);
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = next() % frame.size();
      switch (next() % 4) {
        case 0:
          frame[pos] = static_cast<char>(next() % 256);
          break;
        case 1:
          frame.erase(pos, 1 + next() % 3);
          break;
        case 2:
          frame.insert(pos, 1, static_cast<char>(next() % 256));
          break;
        default:
          frame.resize(pos);  // truncation
          break;
      }
      if (frame.empty()) frame = "x";
    }
    try {
      (void)Json::parse(frame);
      ++parsed;
    } catch (const ProtocolError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 2000);
  EXPECT_GT(rejected, 0);
}

TEST(LineReaderTest, SplitAndBatchedFramesBothArrive) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Two frames in one write, then one frame split across two writes.
  const std::string batch = "{\"a\":1}\n{\"b\":2}\n";
  ASSERT_EQ(::write(fds[1], batch.data(), batch.size()),
            static_cast<ssize_t>(batch.size()));
  LineReader reader(fds[0], 4096, 2000);
  std::string line;
  ASSERT_EQ(reader.next(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "{\"a\":1}");
  ASSERT_EQ(reader.next(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "{\"b\":2}");

  ASSERT_EQ(::write(fds[1], "{\"c\":", 5), 5);
  ASSERT_EQ(::write(fds[1], "3}\n", 3), 3);
  ASSERT_EQ(reader.next(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "{\"c\":3}");

  ::close(fds[1]);
  EXPECT_EQ(reader.next(&line), LineReader::Status::kEof);
  ::close(fds[0]);
}

TEST(LineReaderTest, OversizedFramePoisonsTheStream) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string huge(200, 'x');  // no newline within the 64-byte cap
  ASSERT_EQ(::write(fds[1], huge.data(), huge.size()),
            static_cast<ssize_t>(huge.size()));
  LineReader reader(fds[0], 64, 2000);
  std::string line;
  EXPECT_EQ(reader.next(&line), LineReader::Status::kOversized);
  // Once desynced, the reader stays poisoned even if a newline shows up.
  ASSERT_EQ(::write(fds[1], "\n{\"ok\":1}\n", 10), 10);
  EXPECT_EQ(reader.next(&line), LineReader::Status::kOversized);
  ::close(fds[1]);
  ::close(fds[0]);
}

TEST(LineReaderTest, QuietConnectionTimesOut) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  LineReader reader(fds[0], 4096, 50);
  std::string line;
  EXPECT_EQ(reader.next(&line), LineReader::Status::kTimeout);
  ::close(fds[1]);
  ::close(fds[0]);
}

TEST(JobSpecTest, RoundTripsThroughitsFrame) {
  JobSpec spec;
  spec.machines = {"preset:t805:2x2", "preset:risc:4x4"};
  spec.workload_text = "rounds = 2\nseed = 1\n";
  spec.level = "task";
  spec.faults = "drop=0.01,retries=6,seed=7";
  spec.sweep_threads = 3;
  spec.sim_threads = 2;
  spec.sim_partitions = 4;
  spec.isolate = false;
  spec.timeout_s = 12.5;
  spec.retries = 3;
  spec.stall_ms = 250;

  const JobSpec back = JobSpec::from_json(Json::parse(spec.to_json().dump()));
  EXPECT_EQ(back.machines, spec.machines);
  EXPECT_EQ(back.workload_text, spec.workload_text);
  EXPECT_EQ(back.level, spec.level);
  EXPECT_EQ(back.faults, spec.faults);
  EXPECT_EQ(back.sweep_threads, spec.sweep_threads);
  EXPECT_EQ(back.sim_threads, spec.sim_threads);
  EXPECT_EQ(back.sim_partitions, spec.sim_partitions);
  EXPECT_EQ(back.isolate, spec.isolate);
  EXPECT_EQ(back.timeout_s, spec.timeout_s);
  EXPECT_EQ(back.retries, spec.retries);
  EXPECT_EQ(back.stall_ms, spec.stall_ms);
}

TEST(JobSpecTest, RejectsMissingAndMistypedFields) {
  const char* bad[] = {
      "{}",                                                  // no machines
      "{\"machines\":[]}",                                   // empty grid
      "{\"machines\":[\"m\"]}",                              // no workload
      "{\"machines\":\"m\",\"workload\":\"w\"}",             // not a list
      "{\"machines\":[1],\"workload\":\"w\"}",               // not strings
      "{\"machines\":[\"m\"],\"workload\":\"w\",\"level\":\"fast\"}",
      "{\"machines\":[\"m\"],\"workload\":\"w\",\"retries\":2.5}",
      "{\"machines\":[\"m\"],\"workload\":\"w\",\"retries\":-1}",
      "{\"machines\":[\"m\"],\"workload\":\"w\",\"retries\":1e9}",
      "{\"machines\":[\"m\"],\"workload\":\"w\",\"timeout_s\":-5}",
      "{\"machines\":[\"m\"],\"workload\":\"w\",\"isolate\":\"yes\"}",
      "{\"machines\":[\"m\"],\"workload\":\"w\",\"sweep_threads\":\"4\"}",
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)JobSpec::from_json(Json::parse(text)), ProtocolError)
        << "frame: " << text;
  }
}

TEST(ResponseShapeTest, OkAndErrorFrames) {
  EXPECT_TRUE(ok_response().get_bool("ok"));
  const Json err = error_response("no such job");
  EXPECT_FALSE(err.get_bool("ok"));
  EXPECT_EQ(err.get_string("error"), "no such job");
}

}  // namespace
}  // namespace merm::serve
