// Statistics layer tests.
#include "stats/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace merm::stats {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(AccumulatorTest, SummaryStatistics) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_NEAR(a.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(AccumulatorTest, MergeMatchesSequentialAccumulation) {
  const std::vector<double> samples = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  Accumulator whole;
  for (double x : samples) whole.add(x);

  // Split across three "threads", merge in a different order than add order.
  Accumulator parts[3];
  for (std::size_t i = 0; i < samples.size(); ++i) {
    parts[i % 3].add(samples[i]);
  }
  Accumulator merged;
  merged.merge(parts[2]);
  merged.merge(parts[0]);
  merged.merge(parts[1]);

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.sum(), whole.sum());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
}

TEST(AccumulatorTest, MergeWithEmptySides) {
  Accumulator a;
  a.add(3.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);

  Accumulator b;
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
  EXPECT_DOUBLE_EQ(b.min(), 3.0);
  EXPECT_DOUBLE_EQ(b.max(), 3.0);
}

TEST(SharedAccumulatorTest, CollectsAcrossThreads) {
  SharedAccumulator shared;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&shared, t] {
      for (int i = 0; i < 250; ++i) {
        shared.add(static_cast<double>(t * 250 + i));
      }
    });
  }
  for (auto& t : threads) t.join();

  const Accumulator snap = shared.snapshot();
  EXPECT_EQ(snap.count(), 1000u);
  EXPECT_DOUBLE_EQ(snap.sum(), 999.0 * 1000.0 / 2.0);
  EXPECT_DOUBLE_EQ(snap.min(), 0.0);
  EXPECT_DOUBLE_EQ(snap.max(), 999.0);
}

TEST(AccumulatorTest, EmptyIsZeroed) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Log2HistogramTest, BucketsByPowerOfTwo) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.bucket(0), 2u);  // 0 and 1
  EXPECT_EQ(h.bucket(1), 2u);  // 2 and 3
  EXPECT_EQ(h.bucket(10), 1u); // 1024
  EXPECT_EQ(h.summary().count(), 5u);
}

TEST(Log2HistogramTest, QuantileUpperBound) {
  Log2Histogram h;
  for (int i = 0; i < 90; ++i) h.add(10);    // bucket [8,16)
  for (int i = 0; i < 10; ++i) h.add(5000);  // bucket [4096,8192)
  EXPECT_LE(h.quantile_upper_bound(0.5), 15u);
  EXPECT_GE(h.quantile_upper_bound(0.99), 4096u);
}

TEST(TimeSeriesTest, RecordsAndWritesCsv) {
  TimeSeries ts;
  ts.record(100, 1.5);
  ts.record(200, 2.5);
  std::ostringstream os;
  ts.write_csv(os, "value");
  EXPECT_EQ(os.str(), "time_ps,value\n100,1.5\n200,2.5\n");
}

TEST(StatRegistryTest, LooksUpRegisteredMetrics) {
  StatRegistry reg;
  Counter c;
  c.add(42);
  Accumulator a;
  a.add(3.0);
  reg.register_counter("x.count", &c);
  reg.register_accumulator("x.lat", &a);
  EXPECT_EQ(reg.counter("x.count"), 42u);
  EXPECT_EQ(reg.counter("missing"), 0u);
  ASSERT_NE(reg.accumulator("x.lat"), nullptr);
  EXPECT_DOUBLE_EQ(reg.accumulator("x.lat")->mean(), 3.0);
  EXPECT_EQ(reg.accumulator("nope"), nullptr);
}

TEST(StatRegistryTest, SnapshotSortedByName) {
  StatRegistry reg;
  Counter a;
  Counter b;
  reg.register_counter("z.second", &b);
  reg.register_counter("a.first", &a);
  const auto values = reg.counter_values();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0].first, "a.first");
  EXPECT_EQ(values[1].first, "z.second");
}

TEST(StatRegistryTest, CsvHasHeaderAndRows) {
  StatRegistry reg;
  Counter c;
  c.add(7);
  reg.register_counter("hits", &c);
  std::ostringstream os;
  reg.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("metric,kind"), std::string::npos);
  EXPECT_NE(out.find("hits,counter,7"), std::string::npos);
}

// CounterSampler tests moved with the class to tests/obs/sampler_test.cpp.

TEST(StatRegistryTest, HistogramRowsCarryPercentiles) {
  StatRegistry reg;
  Log2Histogram h;
  for (int i = 0; i < 90; ++i) h.add(10);
  for (int i = 0; i < 10; ++i) h.add(5000);
  reg.register_histogram("net.latency", &h);
  ASSERT_NE(reg.histogram("net.latency"), nullptr);
  EXPECT_EQ(reg.histogram("nope"), nullptr);

  std::ostringstream os;
  reg.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("p50,p90,p99"), std::string::npos);
  EXPECT_NE(out.find("net.latency,histogram,"), std::string::npos);
  // p50 falls in [8,16) -> upper bound 15; p99 in [4096,8192) -> 8191.
  EXPECT_NE(out.find(",15,15,8191"), std::string::npos);

  std::ostringstream report;
  reg.print_report(report);
  EXPECT_NE(report.str().find("p50<=15"), std::string::npos);
  EXPECT_NE(report.str().find("p99<=8191"), std::string::npos);
}

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "23456"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 23456 |"), std::string::npos);
}

TEST(TableTest, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(1000.0, 0), "1000");
}

}  // namespace
}  // namespace merm::stats
