// Engine-level tests for the conservative PDES kernel: window math, the
// teleport awaiter, deterministic outbox merge, the barrier hook, end-time
// semantics and the aggregated hang diagnostic — all asserted to be
// invariant in the worker count, which is the engine's headline property.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/pdes.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace merm::sim::pdes {
namespace {

constexpr Tick kLookahead = 10;

/// One hop: wait `hold` locally, then teleport to `dst` with the minimum
/// legal delay and log the arrival.
Process hopper(Engine& eng, std::uint32_t dst, Tick hold, Tick delay,
               std::vector<std::string>& log, std::string tag) {
  Simulator& src_sim = eng.sim(0);
  co_await src_sim.delay(hold);
  co_await eng.teleport(dst, delay);
  Simulator& dst_sim = eng.sim(dst);
  log.push_back(tag + "@" + std::to_string(dst_sim.now()));
}

TEST(PdesEngine, TeleportArrivesExactlyDelayLater) {
  Engine eng(2, 1, kLookahead);
  std::vector<std::string> log;
  eng.sim(0).spawn(hopper(eng, 1, 5, kLookahead, log, "a"));
  EXPECT_EQ(eng.run(), Engine::RunResult::kIdle);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "a@15");  // left at 5, arrived 5 + lookahead
  EXPECT_EQ(eng.end_time(), 15u);
}

/// A delay exactly equal to the lookahead lands on the first tick past the
/// window bound — the boundary case the conservative argument hinges on.
TEST(PdesEngine, WindowEdgeDeliveryIsSafeAndDeterministic) {
  std::vector<std::vector<std::string>> reference;
  for (const unsigned workers : {1u, 2u, 4u}) {
    Engine eng(4, workers, kLookahead);
    std::vector<std::vector<std::string>> logs(4);
    // Every partition's log is only written by its owning worker; comparing
    // the per-partition logs across worker counts is therefore exact.
    for (std::uint32_t p = 0; p < 4; ++p) {
      for (int burst = 0; burst < 3; ++burst) {
        const std::uint32_t dst = (p + 1 + burst) % 4;
        eng.sim(p).spawn([](Engine& e, std::uint32_t src, std::uint32_t d,
                            int b, std::vector<std::string>& log) -> Process {
          co_await e.sim(src).delay(static_cast<Tick>(b));
          co_await e.teleport(d, kLookahead);
          log.push_back("p" + std::to_string(src) + "b" + std::to_string(b) +
                        "@" + std::to_string(e.sim(d).now()));
        }(eng, p, dst, burst, logs[dst]));
      }
    }
    EXPECT_EQ(eng.run(), Engine::RunResult::kIdle) << workers;
    if (workers == 1) {
      reference = logs;
    } else {
      EXPECT_EQ(logs, reference) << "workers=" << workers;
    }
  }
}

/// Randomized teleport storm: chains of hops with random holds and delays,
/// all >= lookahead.  Each arrival is logged into the vector of the
/// partition it lands on, so every vector has exactly one writer (that
/// partition's worker) and its order is fixed by the deterministic outbox
/// merge — the arrival history on every partition must be identical for
/// 1, 2, 4 and 8 workers.
Process storm(Engine& eng, std::uint32_t self, std::uint64_t seed, int hops,
              std::vector<std::vector<std::string>>& logs) {
  Rng rng(seed);
  std::uint32_t here = self;
  for (int h = 0; h < hops; ++h) {
    co_await eng.sim(here).delay(rng.next_below(30));
    const auto next =
        static_cast<std::uint32_t>(rng.next_below(eng.partition_count()));
    if (next == here) continue;
    co_await eng.teleport(next, kLookahead + rng.next_below(20));
    here = next;
    logs[here].push_back("s" + std::to_string(self) + "h" + std::to_string(h) +
                         "@t" + std::to_string(eng.sim(here).now()));
  }
}

TEST(PdesEngine, TeleportStormIsWorkerCountInvariant) {
  std::vector<std::vector<std::string>> reference;
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    Engine eng(8, workers, kLookahead);
    std::vector<std::vector<std::string>> logs(8);
    for (std::uint32_t p = 0; p < 8; ++p) {
      for (int i = 0; i < 4; ++i) {
        eng.sim(p).spawn(
            storm(eng, p, 1000 + p * 16 + i, 12, logs));
      }
    }
    EXPECT_EQ(eng.run(), Engine::RunResult::kIdle);
    if (reference.empty()) {
      reference = logs;
    } else {
      EXPECT_EQ(logs, reference) << "workers=" << workers;
    }
  }
}

TEST(PdesEngine, TimeLimitStopsEveryPartition) {
  Engine eng(2, 2, kLookahead);
  std::vector<std::string> log;
  eng.sim(0).spawn(hopper(eng, 1, 500, kLookahead, log, "late"));
  EXPECT_EQ(eng.run(100), Engine::RunResult::kTimeLimit);
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(eng.end_time(), 100u);
}

TEST(PdesEngine, BarrierHookCapsWindowsAndSeesMonotoneTime) {
  Engine eng(2, 2, kLookahead);
  std::vector<Tick> hook_times;
  // One pending "transition" at t=42: windows must never jump past it
  // without the hook having been offered t >= 42 first.
  eng.set_barrier_hook([&hook_times](Tick t, Tick until) -> Tick {
    hook_times.push_back(t);
    (void)until;
    return t >= 42 ? kTickMax : 42;
  });
  std::vector<std::string> log;
  eng.sim(0).spawn(hopper(eng, 1, 100, kLookahead, log, "x"));
  EXPECT_EQ(eng.run(), Engine::RunResult::kIdle);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "x@110");
  ASSERT_FALSE(hook_times.empty());
  for (std::size_t i = 1; i < hook_times.size(); ++i) {
    EXPECT_LE(hook_times[i - 1], hook_times[i]);
  }
}

/// A process that parks on an event nobody triggers: the engine must report
/// the hang through the registered reporters, identically for any worker
/// count.
Process parked(Simulator& sim) {
  Event ev;
  co_await sim.delay(3);
  co_await ev;
}

TEST(PdesEngine, HangDiagnosticAggregatesAcrossPartitions) {
  std::vector<std::string> diags;
  for (const unsigned workers : {1u, 2u}) {
    Engine eng(2, workers, kLookahead);
    for (std::uint32_t p = 0; p < 2; ++p) {
      eng.sim(p).add_hang_reporter([p](std::vector<std::string>& lines) {
        lines.push_back("partition " + std::to_string(p) + " stuck");
      });
      eng.sim(p).spawn(parked(eng.sim(p)), "parker" + std::to_string(p));
    }
    EXPECT_EQ(eng.run(), Engine::RunResult::kIdle);
    const std::string diag = eng.hang_diagnostic();
    EXPECT_NE(diag.find("partition 0 stuck"), std::string::npos) << diag;
    EXPECT_NE(diag.find("partition 1 stuck"), std::string::npos) << diag;
    diags.push_back(diag);
  }
  EXPECT_EQ(diags[0], diags[1]);
}

TEST(PdesEngine, AggregatesSumOverPartitions) {
  Engine eng(3, 2, kLookahead);
  std::vector<std::string> log;
  eng.sim(0).spawn(hopper(eng, 1, 1, kLookahead, log, "m"));
  eng.sim(2).spawn(hopper(eng, 1, 2, kLookahead + 4, log, "n"));
  EXPECT_EQ(eng.run(), Engine::RunResult::kIdle);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_GE(eng.events_processed(), 4u);
  EXPECT_GE(eng.peak_queue_depth(), 1u);
  eng.collect_finished();
  EXPECT_EQ(eng.live_processes(), 0u);
}

/// The metrics contract: profiling is host-side observation only, so the
/// simulated history must be bit-identical with profiling on or off, at
/// any worker count — and the profile's deterministic counters (events,
/// mail posted, windows) must themselves be worker-count invariant.
TEST(PdesEngine, ProfilingDoesNotPerturbResultsAndCountsDeterministically) {
  std::vector<std::vector<std::string>> reference;
  Engine::Profile ref_profile;
  for (const bool profiled : {false, true}) {
    for (const unsigned workers : {1u, 2u, 4u}) {
      Engine eng(4, workers, kLookahead);
      if (profiled) eng.enable_profiling();
      std::vector<std::vector<std::string>> logs(4);
      for (std::uint32_t p = 0; p < 4; ++p) {
        for (int i = 0; i < 3; ++i) {
          eng.sim(p).spawn(storm(eng, p, 500 + p * 8 + i, 10, logs));
        }
      }
      EXPECT_EQ(eng.run(), Engine::RunResult::kIdle);
      if (reference.empty()) {
        reference = logs;
      } else {
        EXPECT_EQ(logs, reference)
            << "workers=" << workers << " profiled=" << profiled;
      }
      if (!profiled) continue;

      const Engine::Profile prof = eng.profile();
      EXPECT_EQ(prof.windows, eng.windows());
      ASSERT_EQ(prof.partitions.size(), 4u);
      std::uint64_t events = 0;
      for (const auto& part : prof.partitions) events += part.events;
      EXPECT_EQ(events, eng.events_processed());
      if (ref_profile.partitions.empty()) {
        ref_profile = prof;
      } else {
        // The deterministic slice of the profile is invariant in the
        // worker count; host-time fields (busy_ns, barrier_wait_ns) are
        // not and stay unasserted.
        EXPECT_EQ(prof.windows, ref_profile.windows) << workers;
        EXPECT_EQ(prof.mail_delivered, ref_profile.mail_delivered) << workers;
        for (std::size_t p = 0; p < prof.partitions.size(); ++p) {
          EXPECT_EQ(prof.partitions[p].events, ref_profile.partitions[p].events)
              << "workers=" << workers << " partition=" << p;
          EXPECT_EQ(prof.partitions[p].mail_posted,
                    ref_profile.partitions[p].mail_posted)
              << "workers=" << workers << " partition=" << p;
        }
      }
      // Host-side timing exists when parallel workers actually measured
      // windows; with one worker busy time still accumulates.
      EXPECT_GT(prof.windows, 0u);
      EXPECT_GE(prof.imbalance_max, prof.imbalance_mean());
    }
  }
}

}  // namespace
}  // namespace merm::sim::pdes
