// Tests for the coroutine process machinery: delays, events, tasks, joins,
// and exception propagation.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulator.hpp"

namespace merm::sim {
namespace {

Process ticker(Simulator& sim, std::vector<Tick>& out, Tick step, int n) {
  for (int i = 0; i < n; ++i) {
    co_await Delay{step};
    out.push_back(sim.now());
  }
}

TEST(CoroTest, DelayAdvancesSimulatedTime) {
  Simulator sim;
  std::vector<Tick> times;
  sim.spawn(ticker(sim, times, 10, 3));
  sim.run();
  EXPECT_EQ(times, (std::vector<Tick>{10, 20, 30}));
}

TEST(CoroTest, ProcessesInterleaveByTime) {
  Simulator sim;
  std::vector<Tick> a;
  std::vector<Tick> b;
  sim.spawn(ticker(sim, a, 10, 3));  // 10 20 30
  sim.spawn(ticker(sim, b, 7, 3));   // 7 14 21
  sim.run();
  EXPECT_EQ(a, (std::vector<Tick>{10, 20, 30}));
  EXPECT_EQ(b, (std::vector<Tick>{7, 14, 21}));
}

TEST(CoroTest, SpawnStartsAtCurrentTime) {
  Simulator sim;
  Tick started = kTickMax;
  sim.schedule_at(42, [&] {
    sim.spawn([](Simulator& s, Tick& out) -> Process {
      out = s.now();
      co_return;
    }(sim, started));
  });
  sim.run();
  EXPECT_EQ(started, 42u);
}

TEST(CoroTest, JoinWaitsForCompletion) {
  Simulator sim;
  std::vector<Tick> dummy;
  ProcessHandle worker = sim.spawn(ticker(sim, dummy, 5, 4));  // ends at 20
  Tick joined_at = 0;
  sim.spawn([](Simulator& s, ProcessHandle w, Tick& out) -> Process {
    co_await w.join();
    out = s.now();
  }(sim, worker, joined_at));
  sim.run();
  EXPECT_EQ(joined_at, 20u);
  EXPECT_TRUE(worker.finished());
}

TEST(CoroTest, JoinOnFinishedProcessDoesNotBlock) {
  Simulator sim;
  std::vector<Tick> dummy;
  ProcessHandle worker = sim.spawn(ticker(sim, dummy, 1, 1));
  sim.run();
  ASSERT_TRUE(worker.finished());
  Tick joined_at = kTickMax;
  sim.spawn([](Simulator& s, ProcessHandle w, Tick& out) -> Process {
    co_await w.join();
    out = s.now();
  }(sim, worker, joined_at));
  sim.run();
  EXPECT_EQ(joined_at, 1u);
}

TEST(CoroTest, EventReleasesAllWaiters) {
  Simulator sim;
  Event ev;
  std::vector<int> woke;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Event& e, std::vector<int>& w, int id) -> Process {
      co_await e;
      w.push_back(id);
    }(ev, woke, i));
  }
  sim.schedule_at(100, [&] { ev.trigger(); });
  sim.run();
  EXPECT_EQ(woke, (std::vector<int>{0, 1, 2}));  // FIFO release
  EXPECT_EQ(sim.now(), 100u);
}

TEST(CoroTest, TriggeredEventDoesNotSuspend) {
  Simulator sim;
  Event ev;
  ev.trigger();
  bool ran = false;
  sim.spawn([](Event& e, bool& r) -> Process {
    co_await e;
    r = true;
  }(ev, ran));
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(CoroTest, EventResetReArms) {
  Simulator sim;
  Event ev;
  int wakeups = 0;
  sim.spawn([](Event& e, int& n) -> Process {
    co_await e;
    ++n;
    e.reset();
    co_await e;
    ++n;
  }(ev, wakeups));
  sim.schedule_at(10, [&] { ev.trigger(); });
  sim.schedule_at(20, [&] { ev.trigger(); });
  sim.run();
  EXPECT_EQ(wakeups, 2);
}

Task<int> doubler(int x) { co_return x * 2; }

Task<int> delayed_sum(Simulator&, int a, int b) {
  co_await Delay{100};
  const int da = co_await doubler(a);
  const int db = co_await doubler(b);
  co_return da + db;
}

TEST(CoroTest, TaskReturnsValueThroughNestedAwaits) {
  Simulator sim;
  int result = 0;
  Tick finished = 0;
  sim.spawn([](Simulator& s, int& r, Tick& f) -> Process {
    r = co_await delayed_sum(s, 3, 4);
    f = s.now();
  }(sim, result, finished));
  sim.run();
  EXPECT_EQ(result, 14);
  EXPECT_EQ(finished, 100u);
}

Task<> failing_task() {
  co_await Delay{5};
  throw std::runtime_error("task boom");
}

TEST(CoroTest, TaskExceptionPropagatesToAwaiter) {
  Simulator sim;
  bool caught = false;
  sim.spawn([](bool& c) -> Process {
    try {
      co_await failing_task();
    } catch (const std::runtime_error& e) {
      c = std::string(e.what()) == "task boom";
    }
  }(caught));
  sim.run();
  EXPECT_TRUE(caught);
}

Process failing_process() {
  co_await Delay{10};
  throw std::logic_error("process boom");
}

TEST(CoroTest, ProcessExceptionSurfacesFromRun) {
  Simulator sim;
  sim.spawn(failing_process());
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(CoroTest, LiveProcessAccounting) {
  Simulator sim;
  std::vector<Tick> dummy;
  sim.spawn(ticker(sim, dummy, 10, 2), "short");
  Event never;
  sim.spawn([](Event& e) -> Process { co_await e; }(never), "blocked");
  sim.run();
  EXPECT_EQ(sim.live_processes(), 1u);
  const auto names = sim.live_process_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "blocked");
  sim.collect_finished();
  EXPECT_EQ(sim.live_processes(), 1u);
}

TEST(CoroTest, CollectFinishedFreesOnlyDoneProcesses) {
  Simulator sim;
  std::vector<Tick> dummy;
  for (int i = 0; i < 5; ++i) sim.spawn(ticker(sim, dummy, 1, 1));
  sim.run();
  EXPECT_EQ(sim.live_processes(), 0u);
  sim.collect_finished();  // must not crash / double free
  EXPECT_EQ(sim.live_processes(), 0u);
}

// A process that spawns another process mid-run.
Process parent(Simulator& sim, std::vector<Tick>& out) {
  co_await Delay{10};
  sim.spawn(ticker(sim, out, 5, 2));  // 15, 20
  co_await Delay{100};
}

TEST(CoroTest, ProcessCanSpawnProcesses) {
  Simulator sim;
  std::vector<Tick> out;
  sim.spawn(parent(sim, out));
  sim.run();
  EXPECT_EQ(out, (std::vector<Tick>{15, 20}));
}

TEST(CoroTest, DelayPriorityOrdersSimultaneousResumes) {
  Simulator sim;
  std::vector<int> order;
  auto proc = [](std::vector<int>& o, int prio, int id) -> Process {
    co_await Delay{10, prio};
    o.push_back(id);
  };
  sim.spawn(proc(order, 5, 0));
  sim.spawn(proc(order, -5, 1));
  sim.spawn(proc(order, 0, 2));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

}  // namespace
}  // namespace merm::sim
