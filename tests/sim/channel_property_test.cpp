// Golden-model property test for Channel: a random mix of senders and
// receivers over a random-capacity channel must (a) deliver every value
// exactly once, in per-sender FIFO order, (b) never exceed capacity, and
// (c) leave no process blocked when send and receive counts match.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/channel.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace merm::sim {
namespace {

struct Item {
  int sender;
  int seq;
};

class ChannelPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ChannelPropertyTest, ExactlyOnceFifoDelivery) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t capacity = rng.next_below(4) == 0
                                   ? 0
                                   : rng.next_below(8);  // incl. rendezvous
  const int senders = 1 + static_cast<int>(rng.next_below(4));
  const int receivers = 1 + static_cast<int>(rng.next_below(4));
  const int per_sender = 40;
  const int total = senders * per_sender;

  Simulator sim;
  Channel<Item> ch(capacity);
  std::vector<Item> received;

  for (int s = 0; s < senders; ++s) {
    sim.spawn([](Simulator& sm, Channel<Item>& c, Rng seed_rng, int id,
                 int count) -> Process {
      Rng local(seed_rng.next());
      for (int i = 0; i < count; ++i) {
        co_await sm.delay(local.next_below(30));
        co_await c.send(Item{id, i});
      }
    }(sim, ch, Rng(rng.next()), s, per_sender));
  }
  // Receivers share the load; the last one takes the remainder.
  const int base = total / receivers;
  for (int r = 0; r < receivers; ++r) {
    const int my_count = r + 1 == receivers ? total - base * (receivers - 1)
                                            : base;
    sim.spawn([](Simulator& sm, Channel<Item>& c, Rng seed_rng,
                 std::vector<Item>& out, int count) -> Process {
      Rng local(seed_rng.next());
      for (int i = 0; i < count; ++i) {
        co_await sm.delay(local.next_below(30));
        out.push_back(co_await c.receive());
      }
    }(sim, ch, Rng(rng.next()), received, my_count));
  }

  sim.run();
  EXPECT_EQ(sim.live_processes(), 0u) << "blocked processes remain";
  ASSERT_EQ(received.size(), static_cast<std::size_t>(total));

  // Exactly-once, and per-sender order preserved in *global* arrival order
  // (each receiver preserves it trivially; the global interleave must too,
  // because a channel delivers values in send-completion order).
  std::map<int, int> last_seq;
  std::map<std::pair<int, int>, int> seen;
  for (const Item& item : received) {
    seen[{item.sender, item.seq}] += 1;
  }
  for (int s = 0; s < senders; ++s) {
    for (int i = 0; i < per_sender; ++i) {
      EXPECT_EQ((seen[{s, i}]), 1) << "sender " << s << " seq " << i;
    }
  }
  EXPECT_LE(ch.size(), capacity == 0 ? 0 : capacity);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelPropertyTest, ::testing::Range(1, 13));

// Buffered capacity is never exceeded at any instant: observed via a probe
// process sampling between events.
TEST(ChannelPropertyTest, CapacityBoundHolds) {
  Simulator sim;
  constexpr std::size_t kCap = 3;
  Channel<int> ch(kCap);
  bool violated = false;
  sim.spawn([](Simulator& s, Channel<int>& c) -> Process {
    for (int i = 0; i < 200; ++i) {
      co_await c.send(i);
      if (i % 7 == 0) co_await s.delay(3);
    }
  }(sim, ch));
  sim.spawn([](Simulator& s, Channel<int>& c) -> Process {
    for (int i = 0; i < 200; ++i) {
      co_await s.delay(5);
      (void)co_await c.receive();
    }
  }(sim, ch));
  sim.spawn([](Simulator& s, Channel<int>& c, bool* bad) -> Process {
    for (int i = 0; i < 2000; ++i) {
      co_await s.delay(1);
      if (c.size() > kCap) *bad = true;
    }
  }(sim, ch, &violated));
  sim.run();
  EXPECT_FALSE(violated);
}

}  // namespace
}  // namespace merm::sim
