// FifoResource tests: grant order, hand-off semantics, state observation.
#include "sim/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace merm::sim {
namespace {

TEST(FifoResourceTest, FreeAcquireDoesNotWait) {
  Simulator sim;
  FifoResource res;
  Tick acquired_at = kTickMax;
  sim.spawn([](Simulator& s, FifoResource& r, Tick* t) -> Process {
    co_await r.acquire();
    *t = s.now();
    r.release();
  }(sim, res, &acquired_at));
  sim.run();
  EXPECT_EQ(acquired_at, 0u);
  EXPECT_FALSE(res.busy());
}

TEST(FifoResourceTest, GrantsInRequestOrder) {
  Simulator sim;
  FifoResource res;
  std::vector<int> order;
  auto holder = [](Simulator& s, FifoResource& r, std::vector<int>& o, int id,
                   Tick arrive, Tick hold) -> Process {
    co_await s.delay(arrive);
    co_await r.acquire();
    o.push_back(id);
    co_await s.delay(hold);
    r.release();
  };
  sim.spawn(holder(sim, res, order, 0, 0, 100));
  sim.spawn(holder(sim, res, order, 1, 10, 10));
  sim.spawn(holder(sim, res, order, 2, 20, 10));
  sim.spawn(holder(sim, res, order, 3, 15, 10));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3, 2}));  // FIFO by arrival
  EXPECT_FALSE(res.busy());
  EXPECT_EQ(res.waiters(), 0u);
}

TEST(FifoResourceTest, HandoffKeepsResourceBusy) {
  Simulator sim;
  FifoResource res;
  bool observed_busy_between = false;
  sim.spawn([](Simulator& s, FifoResource& r) -> Process {
    co_await r.acquire();
    co_await s.delay(50);
    r.release();
  }(sim, res));
  sim.spawn([](Simulator& s, FifoResource& r, bool* busy) -> Process {
    co_await s.delay(10);
    co_await r.acquire();  // waits for the hand-off
    *busy = r.busy();      // still marked busy while we hold it
    r.release();
    (void)s;
  }(sim, res, &observed_busy_between));
  sim.run();
  EXPECT_TRUE(observed_busy_between);
}

TEST(FifoResourceTest, WaiterCountVisibleWhileQueued) {
  Simulator sim;
  FifoResource res;
  sim.spawn([](Simulator& s, FifoResource& r) -> Process {
    co_await r.acquire();
    co_await s.delay(100);
    r.release();
  }(sim, res));
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](FifoResource& r) -> Process {
      co_await r.acquire();
      r.release();
    }(res));
  }
  sim.run(/*until=*/50);
  EXPECT_TRUE(res.busy());
  EXPECT_EQ(res.waiters(), 3u);
  sim.run();
  EXPECT_EQ(res.waiters(), 0u);
  EXPECT_FALSE(res.busy());
}

}  // namespace
}  // namespace merm::sim
