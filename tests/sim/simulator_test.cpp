// Unit tests for the event-queue core of the kernel: ordering, run bounds,
// stop, and callback scheduling.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace merm::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(SimulatorTest, RunsCallbacksInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), Simulator::RunResult::kIdle);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(SimulatorTest, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(SimulatorTest, PriorityBreaksTimeTies) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5, [&] { order.push_back(1); }, /*priority=*/1);
  sim.schedule_at(5, [&] { order.push_back(0); }, /*priority=*/-1);
  sim.schedule_at(5, [&] { order.push_back(2); }, /*priority=*/2);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimulatorTest, ScheduleInIsRelativeToNow) {
  Simulator sim;
  Tick seen = 0;
  sim.schedule_at(100, [&] {
    sim.schedule_in(50, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 150u);
}

TEST(SimulatorTest, ScheduleAtInThePastClampsToNow) {
  Simulator sim;
  Tick seen = kTickMax;
  sim.schedule_at(100, [&] {
    sim.schedule_at(10, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 100u);
}

TEST(SimulatorTest, TimeLimitStopsBeforeLaterEvents) {
  Simulator sim;
  bool late_ran = false;
  sim.schedule_at(10, [] {});
  sim.schedule_at(1000, [&] { late_ran = true; });
  EXPECT_EQ(sim.run(/*until=*/100), Simulator::RunResult::kTimeLimit);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(sim.now(), 100u);
  // Resuming runs the remaining event.
  EXPECT_EQ(sim.run(), Simulator::RunResult::kIdle);
  EXPECT_TRUE(late_ran);
  EXPECT_EQ(sim.now(), 1000u);
}

TEST(SimulatorTest, TimeLimitInPastDoesNotRewindClock) {
  Simulator sim;
  sim.schedule_at(500, [] {});
  sim.schedule_at(700, [] {});
  sim.run(/*until=*/600);
  EXPECT_EQ(sim.now(), 600u);
  sim.run(/*until=*/100);  // earlier than now: no-op
  EXPECT_EQ(sim.now(), 600u);
}

TEST(SimulatorTest, EventLimit) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(static_cast<Tick>(i), [&] { ++count; });
  }
  EXPECT_EQ(sim.run(kTickMax, 4), Simulator::RunResult::kEventLimit);
  EXPECT_EQ(count, 4);
}

TEST(SimulatorTest, StopAbortsRun) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(static_cast<Tick>(i), [&] {
      ++count;
      if (count == 3) sim.stop();
    });
  }
  EXPECT_EQ(sim.run(), Simulator::RunResult::kStopped);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.run(), Simulator::RunResult::kIdle);
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, EventsProcessedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.schedule_at(static_cast<Tick>(i), [] {});
  }
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(SimulatorTest, EmptyRunIsIdle) {
  Simulator sim;
  EXPECT_EQ(sim.run(), Simulator::RunResult::kIdle);
  EXPECT_EQ(sim.now(), 0u);
}

}  // namespace
}  // namespace merm::sim
