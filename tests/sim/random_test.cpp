// Determinism and statistical sanity of the kernel's PRNG and distributions.
#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace merm::sim {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng a(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(77);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.next(), first[static_cast<std::size_t>(i)]);
  }
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformRealMeanIsHalf) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(40.0);
  EXPECT_NEAR(sum / kN, 40.0, 1.0);
}

TEST(RngTest, NormalMeanAndSpread) {
  Rng rng(17);
  double sum = 0;
  double sq = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(DiscreteDistributionTest, ProportionsFollowWeights) {
  Rng rng(23);
  const std::array<double, 3> weights{1.0, 2.0, 7.0};
  DiscreteDistribution dist(weights);
  std::array<int, 3> hits{};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    hits[dist.sample(rng)] += 1;
  }
  EXPECT_NEAR(hits[0] / double(kN), 0.1, 0.01);
  EXPECT_NEAR(hits[1] / double(kN), 0.2, 0.01);
  EXPECT_NEAR(hits[2] / double(kN), 0.7, 0.01);
}

TEST(DiscreteDistributionTest, ZeroWeightNeverSampled) {
  Rng rng(29);
  const std::array<double, 3> weights{1.0, 0.0, 1.0};
  DiscreteDistribution dist(weights);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(dist.sample(rng), 1u);
  }
}

TEST(DiscreteDistributionTest, RejectsInvalidWeights) {
  EXPECT_THROW(DiscreteDistribution(std::array<double, 2>{1.0, -1.0}),
               std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution(std::array<double, 2>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution(std::span<const double>{}),
               std::invalid_argument);
}

TEST(ZipfDistributionTest, LowRanksDominate) {
  Rng rng(31);
  ZipfDistribution dist(64, 1.0);
  std::vector<int> hits(64, 0);
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const auto idx = dist.sample(rng);
    ASSERT_LT(idx, 64u);
    hits[idx] += 1;
  }
  EXPECT_GT(hits[0], hits[10]);
  EXPECT_GT(hits[0], kN / 10);
}

TEST(ZipfDistributionTest, RejectsEmpty) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace merm::sim
