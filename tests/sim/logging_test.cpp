// Logging facility tests: levels, sinks, formatting, and integration with
// the models (comm layer logs at debug level).
#include "sim/logging.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gen/apps.hpp"
#include "machine/params.hpp"
#include "node/machine.hpp"
#include "sim/simulator.hpp"

namespace merm::sim {
namespace {

// RAII guard: restores global logger state after each test.
struct LoggerGuard {
  LoggerGuard() { Logger::instance().set_level(LogLevel::kOff); }
  ~LoggerGuard() {
    Logger::instance().set_level(LogLevel::kOff);
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_sink([](const std::string&) {});
  }
};

TEST(LoggingTest, OffByDefaultAndCheap) {
  LoggerGuard guard;
  std::vector<std::string> lines;
  Logger::instance().set_sink(
      [&lines](const std::string& l) { lines.push_back(l); });
  Log log("test");
  log.info(100, "should not appear");
  EXPECT_TRUE(lines.empty());
  EXPECT_FALSE(log.enabled(LogLevel::kInfo));
}

TEST(LoggingTest, LevelsFilterInOrder) {
  LoggerGuard guard;
  std::vector<std::string> lines;
  Logger::instance().set_sink(
      [&lines](const std::string& l) { lines.push_back(l); });
  Logger::instance().set_level(LogLevel::kInfo);
  Log log("component");
  log.warn(1, "warn msg");
  log.info(2, "info msg");
  log.debug(3, "debug msg");   // filtered
  log.trace(4, "trace msg");   // filtered
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("warn component: warn msg"), std::string::npos);
  EXPECT_NE(lines[1].find("info component: info msg"), std::string::npos);
}

TEST(LoggingTest, LinesCarrySimulatedTime) {
  LoggerGuard guard;
  std::vector<std::string> lines;
  Logger::instance().set_sink(
      [&lines](const std::string& l) { lines.push_back(l); });
  Logger::instance().set_level(LogLevel::kInfo);
  Log log("t");
  log.info(3 * kTicksPerMicrosecond, "tick");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("[3.00 us]"), std::string::npos);
}

TEST(LoggingTest, VariadicArgumentsConcatenate) {
  LoggerGuard guard;
  std::vector<std::string> lines;
  Logger::instance().set_sink(
      [&lines](const std::string& l) { lines.push_back(l); });
  Logger::instance().set_level(LogLevel::kDebug);
  Log log("x");
  log.debug(0, "a=", 42, " b=", 3.5, " c=", "str");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("a=42 b=3.5 c=str"), std::string::npos);
}

TEST(LoggingTest, CommLayerLogsAtDebugLevel) {
  LoggerGuard guard;
  std::vector<std::string> lines;
  Logger::instance().set_sink(
      [&lines](const std::string& l) { lines.push_back(l); });
  Logger::instance().set_level(LogLevel::kDebug);

  sim::Simulator sim;
  node::Machine m(sim, machine::presets::t805_multicomputer(2, 1));
  auto w = gen::make_offline_workload(
      2, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
        gen::pingpong(a, s, n, gen::PingPongParams{2, 64});
      });
  m.launch_detailed(w);
  sim.run();

  bool saw_send = false;
  for (const std::string& line : lines) {
    if (line.find("comm:") != std::string::npos &&
        line.find("send(") != std::string::npos) {
      saw_send = true;
    }
  }
  EXPECT_TRUE(saw_send);
}

}  // namespace
}  // namespace merm::sim
