// Property/fuzz test for the event queue's 4-ary heap and same-tick FIFO
// lane: for any stream of (time, priority) keys — duplicates included — the
// dispatch order must equal a std::stable_sort of the stream by
// (time, priority), i.e. exactly the (time, priority, insertion seq) total
// order a single global heap would give.  The lane is an optimization for
// priority-0 events scheduled at now(); these tests deliberately mix lane
// and heap traffic, including events scheduled from inside running events,
// to catch any divergence between the two structures.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace merm::sim {
namespace {

struct Key {
  Tick time;
  int priority;
  std::size_t seq;  ///< insertion order, the stable-sort tie-break
};

/// The reference order: stable sort by (time, priority).
std::vector<std::size_t> reference_order(const std::vector<Key>& keys) {
  std::vector<Key> sorted = keys;
  std::stable_sort(sorted.begin(), sorted.end(), [](const Key& a,
                                                    const Key& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.priority < b.priority;
  });
  std::vector<std::size_t> order;
  order.reserve(sorted.size());
  for (const Key& k : sorted) order.push_back(k.seq);
  return order;
}

TEST(HeapLaneProperty, RandomStreamDispatchesInStableSortOrder) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 0xdeadbeefull}) {
    Rng rng(seed);
    Simulator sim;
    std::vector<Key> keys;
    std::vector<std::size_t> dispatched;
    const std::size_t n = 2000;
    for (std::size_t i = 0; i < n; ++i) {
      // A narrow time range forces heavy timestamp duplication; priorities
      // straddle zero so both lane-eligible and heap-only keys occur.
      const Tick t = static_cast<Tick>(rng.next_below(50));
      const int prio = static_cast<int>(rng.next_below(5)) - 2;
      keys.push_back(Key{t, prio, i});
      sim.schedule_at(t, [&dispatched, i] { dispatched.push_back(i); }, prio);
    }
    ASSERT_EQ(sim.run(), Simulator::RunResult::kIdle);
    EXPECT_EQ(dispatched, reference_order(keys)) << "seed " << seed;
  }
}

TEST(HeapLaneProperty, DuplicateTimestampsAreFifoWithinEqualKeys) {
  Simulator sim;
  std::vector<std::size_t> dispatched;
  const std::size_t n = 500;
  for (std::size_t i = 0; i < n; ++i) {
    sim.schedule_at(7, [&dispatched, i] { dispatched.push_back(i); });
  }
  ASSERT_EQ(sim.run(), Simulator::RunResult::kIdle);
  ASSERT_EQ(dispatched.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(dispatched[i], i);
}

/// Events scheduled *during* dispatch: same-tick priority-0 events take the
/// FIFO lane, everything else the heap.  The combined stream must still
/// dispatch in (time, priority, seq) order, where seq counts every schedule
/// call in program order (the simulator assigns sequence numbers in exactly
/// that order).
TEST(HeapLaneProperty, NestedSchedulingKeepsTheGlobalTotalOrder) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    Rng rng(seed);
    Simulator sim;
    std::vector<Key> keys;
    std::vector<std::size_t> dispatched;
    std::size_t next_id = 0;

    // Each dispatched event may schedule a few followers, some at now()
    // (lane when priority 0, heap otherwise), some in the future (heap).
    // A same-tick child must carry a priority >= its parent's: an earlier
    // key would mean scheduling into the already-dispatched past, which no
    // single-heap reference can express either.
    std::function<void(std::size_t, int, int)> fire = [&](std::size_t id,
                                                          int prio,
                                                          int depth) {
      dispatched.push_back(id);
      if (depth >= 3) return;
      const std::size_t children = rng.next_below(3);
      for (std::size_t c = 0; c < children; ++c) {
        const bool same_tick = rng.chance(0.5);
        const Tick t = sim.now() + (same_tick ? 0 : 1 + rng.next_below(20));
        const int child_prio =
            same_tick
                ? std::max(prio, 0) + static_cast<int>(rng.next_below(2))
                : static_cast<int>(rng.next_below(3)) - 1;
        const std::size_t child = next_id++;
        keys.push_back(Key{t, child_prio, child});
        sim.schedule_at(
            t,
            [&fire, child, child_prio, depth] {
              fire(child, child_prio, depth + 1);
            },
            child_prio);
      }
    };

    for (std::size_t i = 0; i < 200; ++i) {
      const Tick t = static_cast<Tick>(rng.next_below(30));
      const int prio = static_cast<int>(rng.next_below(3)) - 1;
      const std::size_t id = next_id++;
      keys.push_back(Key{t, prio, id});
      sim.schedule_at(t, [&fire, id, prio] { fire(id, prio, 0); }, prio);
    }
    ASSERT_EQ(sim.run(), Simulator::RunResult::kIdle);

    // The reference order must be computed over the *final* key set, which
    // includes every nested schedule in the simulator's own seq order.
    EXPECT_EQ(dispatched, reference_order(keys)) << "seed " << seed;
  }
}

/// The fast scheduler (lane + local cursors) and the reference scheduler
/// (plain heap) must dispatch identical streams identically.
TEST(HeapLaneProperty, FastAndReferenceSchedulersAgree) {
  for (const std::uint64_t seed : {21ull, 22ull}) {
    std::vector<std::vector<std::size_t>> orders;
    for (const int mode : {0, 1}) {
      set_reference_scheduler_override(mode);
      Rng rng(seed);
      Simulator sim;
      std::vector<std::size_t> dispatched;
      for (std::size_t i = 0; i < 1500; ++i) {
        const Tick t = static_cast<Tick>(rng.next_below(40));
        const int prio = static_cast<int>(rng.next_below(5)) - 2;
        sim.schedule_at(t, [&dispatched, i] { dispatched.push_back(i); },
                        prio);
      }
      EXPECT_EQ(sim.run(), Simulator::RunResult::kIdle);
      orders.push_back(std::move(dispatched));
    }
    set_reference_scheduler_override(-1);
    EXPECT_EQ(orders[0], orders[1]) << "seed " << seed;
  }
}

/// Injection via the PDES entry point: inject_resume draws ascending seqs,
/// so equal (time, priority) injections dispatch in injection order, and
/// they interleave correctly with normally scheduled events.
TEST(HeapLaneProperty, InjectedResumesRespectTheTotalOrder) {
  Simulator sim;
  std::vector<int> order;
  // next_event_time must see through both lane and heap.
  EXPECT_EQ(sim.next_event_time(), kTickMax);
  sim.schedule_at(5, [&order] { order.push_back(1); });
  EXPECT_EQ(sim.next_event_time(), 5u);
  sim.schedule_at(3, [&order] { order.push_back(0); });
  EXPECT_EQ(sim.next_event_time(), 3u);
  ASSERT_EQ(sim.run(), Simulator::RunResult::kIdle);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(sim.last_event_time(), 5u);
}

}  // namespace
}  // namespace merm::sim
