// Property test: the kernel is bit-deterministic.  A randomized network of
// producer/consumer/worker processes is run twice with the same seed and must
// produce identical observable histories; a different seed must (almost
// surely) differ.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace merm::sim {
namespace {

struct World {
  Simulator sim;
  Rng rng;
  std::vector<std::unique_ptr<Channel<int>>> channels;
  std::ostringstream history;

  explicit World(std::uint64_t seed) : rng(seed) {}
};

Process chaos_worker(World& w, int id, int iterations) {
  auto& rng = w.rng;
  for (int i = 0; i < iterations; ++i) {
    const auto action = rng.next_below(3);
    if (action == 0) {
      co_await w.sim.delay(1 + rng.next_below(100));
    } else if (action == 1) {
      auto& ch = *w.channels[rng.next_below(w.channels.size())];
      if (!ch.try_send(id * 1000 + i)) {
        co_await w.sim.delay(1);
      }
    } else {
      auto& ch = *w.channels[rng.next_below(w.channels.size())];
      if (auto v = ch.try_receive()) {
        w.history << "w" << id << " got " << *v << " @" << w.sim.now() << "\n";
      } else {
        co_await w.sim.delay(2);
      }
    }
  }
  w.history << "w" << id << " done @" << w.sim.now() << "\n";
}

std::string run_world(std::uint64_t seed) {
  World w(seed);
  for (int i = 0; i < 4; ++i) {
    w.channels.push_back(std::make_unique<Channel<int>>(4));
  }
  for (int id = 0; id < 6; ++id) {
    w.sim.spawn(chaos_worker(w, id, 200));
  }
  w.sim.run();
  w.history << "final " << w.sim.now() << " events "
            << w.sim.events_processed() << "\n";
  return w.history.str();
}

TEST(DeterminismTest, SameSeedIdenticalHistory) {
  const std::string a = run_world(42);
  const std::string b = run_world(42);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(DeterminismTest, DifferentSeedDifferentHistory) {
  EXPECT_NE(run_world(42), run_world(43));
}

TEST(DeterminismTest, ManySeedsAllReproducible) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    EXPECT_EQ(run_world(seed), run_world(seed)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace merm::sim
