// Channel semantics tests: rendezvous, buffering, blocking accounting,
// FIFO fairness, and try_* operations.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "sim/simulator.hpp"

namespace merm::sim {
namespace {

TEST(ChannelTest, RendezvousTransfersValue) {
  Simulator sim;
  Channel<int> ch;  // capacity 0
  int received = -1;
  Tick recv_time = 0;
  sim.spawn([](Simulator& s, Channel<int>& c) -> Process {
    co_await s.delay(50);
    co_await c.send(42);
  }(sim, ch));
  sim.spawn([](Simulator& s, Channel<int>& c, int& out, Tick& t) -> Process {
    out = co_await c.receive();
    t = s.now();
  }(sim, ch, received, recv_time));
  sim.run();
  EXPECT_EQ(received, 42);
  EXPECT_EQ(recv_time, 50u);  // receiver blocked until sender arrived
}

TEST(ChannelTest, RendezvousBlocksSenderUntilReceiver) {
  Simulator sim;
  Channel<int> ch;
  Tick send_done = 0;
  sim.spawn([](Simulator& s, Channel<int>& c, Tick& t) -> Process {
    co_await c.send(1);
    t = s.now();
  }(sim, ch, send_done));
  sim.spawn([](Simulator& s, Channel<int>& c) -> Process {
    co_await s.delay(70);
    (void)co_await c.receive();
  }(sim, ch));
  sim.run();
  EXPECT_EQ(send_done, 70u);
}

TEST(ChannelTest, BufferedSendDoesNotBlockUntilFull) {
  Simulator sim;
  Channel<int> ch(2);
  std::vector<Tick> send_times;
  sim.spawn([](Simulator& s, Channel<int>& c, std::vector<Tick>& t) -> Process {
    for (int i = 0; i < 3; ++i) {
      co_await c.send(i);
      t.push_back(s.now());
    }
  }(sim, ch, send_times));
  sim.spawn([](Simulator& s, Channel<int>& c) -> Process {
    co_await s.delay(100);
    for (int i = 0; i < 3; ++i) (void)co_await c.receive();
  }(sim, ch));
  sim.run();
  ASSERT_EQ(send_times.size(), 3u);
  EXPECT_EQ(send_times[0], 0u);    // buffered
  EXPECT_EQ(send_times[1], 0u);    // buffered
  EXPECT_EQ(send_times[2], 100u);  // blocked until first receive freed a slot
}

TEST(ChannelTest, ValuesArriveInFifoOrder) {
  Simulator sim;
  Channel<int> ch(kUnbounded);
  std::vector<int> got;
  sim.spawn([](Channel<int>& c) -> Process {
    for (int i = 0; i < 8; ++i) co_await c.send(i);
  }(ch));
  sim.spawn([](Channel<int>& c, std::vector<int>& out) -> Process {
    for (int i = 0; i < 8; ++i) out.push_back(co_await c.receive());
  }(ch, got));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ChannelTest, MultipleReceiversServedFifo) {
  Simulator sim;
  Channel<int> ch;
  std::vector<std::pair<int, int>> got;  // (receiver id, value)
  for (int id = 0; id < 3; ++id) {
    sim.spawn([](Channel<int>& c, std::vector<std::pair<int, int>>& out,
                 int rid) -> Process {
      const int v = co_await c.receive();
      out.emplace_back(rid, v);
    }(ch, got, id));
  }
  sim.spawn([](Simulator& s, Channel<int>& c) -> Process {
    co_await s.delay(10);
    for (int i = 0; i < 3; ++i) co_await c.send(i);
  }(sim, ch));
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  // Longest-waiting receiver gets the first value.
  EXPECT_EQ(got[0], (std::pair<int, int>{0, 0}));
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 1}));
  EXPECT_EQ(got[2], (std::pair<int, int>{2, 2}));
}

TEST(ChannelTest, BlockedCountsAreVisible) {
  Simulator sim;
  Channel<int> ch;  // rendezvous
  sim.spawn([](Channel<int>& c) -> Process { co_await c.send(9); }(ch));
  sim.run();
  EXPECT_EQ(ch.blocked_senders(), 1u);
  EXPECT_EQ(ch.blocked_receivers(), 0u);
  sim.spawn([](Channel<int>& c) -> Process { (void)co_await c.receive(); }(ch));
  sim.run();
  EXPECT_EQ(ch.blocked_senders(), 0u);
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(ChannelTest, TrySendFailsWhenFullAndNoReceiver) {
  Simulator sim;
  Channel<int> ch(1);
  EXPECT_TRUE(ch.try_send(1));
  EXPECT_FALSE(ch.try_send(2));
  EXPECT_EQ(ch.size(), 1u);
}

TEST(ChannelTest, TrySendDeliversToWaitingReceiver) {
  Simulator sim;
  Channel<int> ch;  // capacity 0
  int got = -1;
  sim.spawn([](Channel<int>& c, int& out) -> Process {
    out = co_await c.receive();
  }(ch, got));
  sim.run();
  EXPECT_EQ(ch.blocked_receivers(), 1u);
  EXPECT_TRUE(ch.try_send(7));
  sim.run();
  EXPECT_EQ(got, 7);
}

TEST(ChannelTest, TryReceiveFromBufferAndFromBlockedSender) {
  Simulator sim;
  Channel<std::string> buffered(4);
  EXPECT_EQ(buffered.try_receive(), std::nullopt);
  ASSERT_TRUE(buffered.try_send("a"));
  const auto v = buffered.try_receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "a");

  Channel<std::string> rendezvous;
  sim.spawn([](Channel<std::string>& c) -> Process {
    co_await c.send("from-sender");
  }(rendezvous));
  sim.run();
  const auto w = rendezvous.try_receive();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, "from-sender");
  sim.run();  // lets the released sender finish
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(ChannelTest, TryReceiveReleasingSenderRefillsBuffer) {
  Simulator sim;
  Channel<int> ch(1);
  sim.spawn([](Channel<int>& c) -> Process {
    co_await c.send(1);  // buffered
    co_await c.send(2);  // blocks
  }(ch));
  sim.run();
  EXPECT_EQ(ch.size(), 1u);
  EXPECT_EQ(ch.blocked_senders(), 1u);
  const auto v = ch.try_receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  sim.run();  // sender resumes, its value lands in the buffer
  EXPECT_EQ(ch.size(), 1u);
  const auto w = ch.try_receive();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, 2);
}

TEST(ChannelTest, MoveOnlyPayload) {
  Simulator sim;
  Channel<std::unique_ptr<int>> ch(1);
  int got = 0;
  sim.spawn([](Channel<std::unique_ptr<int>>& c) -> Process {
    co_await c.send(std::make_unique<int>(31));
  }(ch));
  sim.spawn([](Channel<std::unique_ptr<int>>& c, int& out) -> Process {
    auto p = co_await c.receive();
    out = *p;
  }(ch, got));
  sim.run();
  EXPECT_EQ(got, 31);
}

// Ping-pong across two rendezvous channels: the classic two-process
// synchronization structure used by the node models.
Process pinger(Simulator& sim, Channel<int>& out, Channel<int>& in,
               std::vector<Tick>& times, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await sim.delay(10);
    co_await out.send(i);
    (void)co_await in.receive();
    times.push_back(sim.now());
  }
}

Process ponger(Simulator& sim, Channel<int>& in, Channel<int>& out,
               int rounds) {
  for (int i = 0; i < rounds; ++i) {
    const int v = co_await in.receive();
    co_await sim.delay(5);
    co_await out.send(v);
  }
}

TEST(ChannelTest, PingPongRoundTripTiming) {
  Simulator sim;
  Channel<int> ab;
  Channel<int> ba;
  std::vector<Tick> times;
  sim.spawn(pinger(sim, ab, ba, times, 3));
  sim.spawn(ponger(sim, ab, ba, 3));
  sim.run();
  // Each round: 10 (think) + 5 (pong delay) = 15.
  EXPECT_EQ(times, (std::vector<Tick>{15, 30, 45}));
  EXPECT_EQ(sim.live_processes(), 0u);
}

}  // namespace
}  // namespace merm::sim
