// FaultPlan tests: script validation, scripted transitions inside the event
// loop, fault-aware routing tables, seeded draws, and the CLI spec parser.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "network/topology.hpp"
#include "sim/simulator.hpp"

namespace merm::fault {
namespace {

constexpr sim::Tick kUs = sim::kTicksPerMicrosecond;

network::Topology mesh(std::uint32_t w, std::uint32_t h) {
  machine::TopologyParams t;
  t.kind = machine::TopologyKind::kMesh2D;
  t.dims = {w, h};
  return network::Topology::make(t);
}

TEST(FaultPlanTest, RejectsInvalidScripts) {
  const network::Topology topo = mesh(2, 2);

  machine::FaultParams bad_node;
  bad_node.node_events.push_back({.node = 4, .down_at = 0});
  EXPECT_THROW(FaultPlan(bad_node, topo), std::invalid_argument);

  machine::FaultParams not_adjacent;
  not_adjacent.link_events.push_back({.a = 0, .b = 3, .down_at = 0});
  EXPECT_THROW(FaultPlan(not_adjacent, topo), std::invalid_argument);

  machine::FaultParams inverted;
  inverted.link_events.push_back(
      {.a = 0, .b = 1, .down_at = 100 * kUs, .up_at = 50 * kUs});
  EXPECT_THROW(FaultPlan(inverted, topo), std::invalid_argument);
}

TEST(FaultPlanTest, ScriptedLinkOutageTogglesAndReroutes) {
  const network::Topology topo = mesh(2, 2);
  machine::FaultParams params;
  params.link_events.push_back(
      {.a = 0, .b = 1, .down_at = 100 * kUs, .up_at = 200 * kUs});

  sim::Simulator sim;
  FaultPlan plan(params, topo);
  plan.arm(sim);

  EXPECT_FALSE(plan.degraded());
  EXPECT_EQ(plan.distance(0, 1), 1u);

  sim.run(150 * kUs);
  EXPECT_TRUE(plan.degraded());
  EXPECT_EQ(plan.links_failed.value(), 1u);
  // Still reachable, but the detour 0 -> 2 -> 3 -> 1 is 3 hops.
  EXPECT_TRUE(plan.reachable(0, 1));
  EXPECT_EQ(plan.distance(0, 1), 3u);
  const std::uint32_t port = plan.next_port(0, 1);
  ASSERT_NE(port, network::kNoPort);
  EXPECT_EQ(topo.neighbor(0, port).node, 2);

  sim.run(250 * kUs);
  EXPECT_FALSE(plan.degraded());
  EXPECT_EQ(plan.links_repaired.value(), 1u);
  EXPECT_EQ(plan.distance(0, 1), 1u);
}

TEST(FaultPlanTest, NodeCrashPartitionsItsTraffic) {
  const network::Topology topo = mesh(2, 2);
  machine::FaultParams params;
  params.node_events.push_back({.node = 3, .down_at = 10 * kUs});

  sim::Simulator sim;
  FaultPlan plan(params, topo);
  plan.arm(sim);
  sim.run();

  EXPECT_TRUE(plan.degraded());
  EXPECT_EQ(plan.nodes_failed.value(), 1u);
  EXPECT_FALSE(plan.node_usable(3));
  EXPECT_FALSE(plan.reachable(0, 3));
  EXPECT_FALSE(plan.reachable(3, 0));
  EXPECT_EQ(plan.distance(0, 3), FaultPlan::kUnreachable);
  // The surviving corner still routes (around, not through, the dead node).
  EXPECT_TRUE(plan.reachable(0, 1));
  EXPECT_TRUE(plan.reachable(1, 2));
  EXPECT_EQ(plan.distance(1, 2), 2u);
}

TEST(FaultPlanTest, DrawsAreSeedDeterministic) {
  const network::Topology topo = mesh(2, 2);
  machine::FaultParams params;
  params.drop_probability = 0.3;
  params.seed = 42;

  FaultPlan a(params, topo);
  FaultPlan b(params, topo);
  std::vector<bool> seq_a;
  std::vector<bool> seq_b;
  for (int i = 0; i < 200; ++i) {
    seq_a.push_back(a.draw_drop());
    seq_b.push_back(b.draw_drop());
  }
  EXPECT_EQ(seq_a, seq_b);
  EXPECT_EQ(a.drops_drawn.value(), b.drops_drawn.value());
  EXPECT_GT(a.drops_drawn.value(), 0u);

  params.seed = 43;
  FaultPlan c(params, topo);
  std::vector<bool> seq_c;
  for (int i = 0; i < 200; ++i) seq_c.push_back(c.draw_drop());
  EXPECT_NE(seq_a, seq_c);
}

TEST(FaultPlanTest, ZeroProbabilityNeverTouchesTheRng) {
  const network::Topology topo = mesh(2, 2);
  machine::FaultParams params;  // both probabilities 0
  FaultPlan plan(params, topo);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(plan.draw_drop());
    EXPECT_FALSE(plan.draw_corrupt());
  }
  EXPECT_EQ(plan.drops_drawn.value(), 0u);
  EXPECT_EQ(plan.corruptions_drawn.value(), 0u);
}

TEST(FaultSpecTest, ParsesTheFullGrammar) {
  const machine::FaultParams p = parse_spec(
      "link=0-1@100:500,node=3@10,drop=0.25,corrupt=0.5,seed=9,"
      "timeout_us=100,retries=7,backoff_us=20");
  EXPECT_TRUE(p.enabled);
  EXPECT_DOUBLE_EQ(p.drop_probability, 0.25);
  EXPECT_DOUBLE_EQ(p.corrupt_probability, 0.5);
  EXPECT_EQ(p.seed, 9u);
  EXPECT_EQ(p.ack_timeout, 100 * kUs);
  EXPECT_EQ(p.max_retries, 7u);
  EXPECT_EQ(p.retry_backoff, 20 * kUs);
  ASSERT_EQ(p.link_events.size(), 1u);
  EXPECT_EQ(p.link_events[0].a, 0);
  EXPECT_EQ(p.link_events[0].b, 1);
  EXPECT_EQ(p.link_events[0].down_at, 100 * kUs);
  EXPECT_EQ(p.link_events[0].up_at, 500 * kUs);
  ASSERT_EQ(p.node_events.size(), 1u);
  EXPECT_EQ(p.node_events[0].node, 3);
  EXPECT_EQ(p.node_events[0].up_at, sim::kTickMax);  // never repaired
}

TEST(FaultSpecTest, RejectsMalformedTokens) {
  EXPECT_THROW(parse_spec("drop=2"), std::invalid_argument);
  EXPECT_THROW(parse_spec("drop=banana"), std::invalid_argument);
  EXPECT_THROW(parse_spec("warp=1"), std::invalid_argument);
  EXPECT_THROW(parse_spec("link=0-1"), std::invalid_argument);
  EXPECT_THROW(parse_spec("link=01@5"), std::invalid_argument);
  EXPECT_THROW(parse_spec("node=3"), std::invalid_argument);
  EXPECT_THROW(parse_spec("link=0-1@500:100"), std::invalid_argument);
  EXPECT_THROW(parse_spec("retries"), std::invalid_argument);
}

}  // namespace
}  // namespace merm::fault
