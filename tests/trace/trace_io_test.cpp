// Trace serialization tests: text and binary round trips, malformed input.
#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/stream.hpp"

namespace merm::trace {
namespace {

std::vector<Operation> sample_ops() {
  return {
      Operation::ifetch(0x1000),
      Operation::load(DataType::kDouble, 0x100010),
      Operation::store(DataType::kInt32, 0x100020),
      Operation::load_const(DataType::kFloat),
      Operation::add(DataType::kDouble),
      Operation::sub(DataType::kInt32),
      Operation::mul(DataType::kInt64),
      Operation::div(DataType::kDouble),
      Operation::branch(0x1040),
      Operation::call(0x2000),
      Operation::ret(0x1044),
      Operation::send(1024, 3, 5),
      Operation::recv(2, 5),
      Operation::asend(64, 0, 9),
      Operation::arecv(kNoNode, 9),
      Operation::compute(1'000'000),
  };
}

TEST(TraceIoTest, TextRoundTripPreservesEveryOperation) {
  const auto ops = sample_ops();
  std::stringstream ss;
  write_text(ss, ops);
  const auto back = read_text(ss);
  EXPECT_EQ(back, ops);
}

TEST(TraceIoTest, TextLinesRoundTripIndividually) {
  for (const Operation& op : sample_ops()) {
    const std::string line = to_text_line(op);
    const auto back = from_text_line(line);
    ASSERT_TRUE(back.has_value()) << line;
    EXPECT_EQ(*back, op) << line;
  }
}

TEST(TraceIoTest, BlankLinesAndCommentsSkipped) {
  EXPECT_EQ(from_text_line(""), std::nullopt);
  EXPECT_EQ(from_text_line("   "), std::nullopt);
  EXPECT_EQ(from_text_line("# a comment"), std::nullopt);
}

TEST(TraceIoTest, MalformedLinesThrow) {
  EXPECT_THROW(from_text_line("frobnicate 1 2"), std::runtime_error);
  EXPECT_THROW(from_text_line("load i32"), std::runtime_error);       // missing addr
  EXPECT_THROW(from_text_line("load f128 0x10"), std::runtime_error); // bad type
  EXPECT_THROW(from_text_line("send 12"), std::runtime_error);        // missing dest
  EXPECT_THROW(from_text_line("compute"), std::runtime_error);
}

TEST(TraceIoTest, MultiNodeTextRoundTrip) {
  std::vector<std::vector<Operation>> per_node{
      sample_ops(),
      {Operation::compute(5), Operation::send(1, 0, 0)},
      {},
  };
  std::stringstream ss;
  write_text_multi(ss, per_node);
  const auto back = read_text_multi(ss);
  EXPECT_EQ(back, per_node);
}

TEST(TraceIoTest, MultiNodeTextRejectsHeaderlessOps) {
  std::stringstream ss("compute 5\n");
  EXPECT_THROW(read_text_multi(ss), std::runtime_error);
}

TEST(TraceIoTest, BinaryRoundTrip) {
  std::vector<std::vector<Operation>> per_node{sample_ops(), {}, sample_ops()};
  std::stringstream ss;
  write_binary(ss, per_node);
  const auto back = read_binary(ss);
  EXPECT_EQ(back, per_node);
}

TEST(TraceIoTest, BinaryRejectsBadMagic) {
  std::stringstream ss("NOTATRACE_______________");
  EXPECT_THROW(read_binary(ss), std::runtime_error);
}

TEST(TraceIoTest, BinaryRejectsTruncation) {
  std::vector<std::vector<Operation>> per_node{sample_ops()};
  std::stringstream ss;
  write_binary(ss, per_node);
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(read_binary(truncated), std::runtime_error);
}

TEST(TraceIoTest, CompressedRoundTrip) {
  std::vector<std::vector<Operation>> per_node{sample_ops(), {},
                                               sample_ops()};
  std::stringstream ss;
  write_compressed(ss, per_node);
  EXPECT_EQ(read_compressed(ss), per_node);
}

TEST(TraceIoTest, CompressedBeatsFixedWidthOnRealTraces) {
  // A realistic trace: long sequential runs of ifetch/load/store.
  std::vector<Operation> ops;
  for (int i = 0; i < 5000; ++i) {
    ops.push_back(Operation::ifetch(0x1000 + 4 * static_cast<std::uint64_t>(i % 64)));
    ops.push_back(Operation::load(DataType::kDouble,
                                  0x100000 + 8 * static_cast<std::uint64_t>(i)));
    ops.push_back(Operation::add(DataType::kDouble));
  }
  std::vector<std::vector<Operation>> per_node{ops};
  std::stringstream fixed;
  write_binary(fixed, per_node);
  std::stringstream packed;
  write_compressed(packed, per_node);
  EXPECT_EQ(read_compressed(packed), per_node);
  const auto fixed_size = fixed.str().size();
  const auto packed_size = packed.str().size();
  EXPECT_LT(packed_size * 3, fixed_size)
      << "compressed " << packed_size << " vs fixed " << fixed_size;
}

TEST(TraceIoTest, CompressedRejectsBadHeaderAndTruncation) {
  std::stringstream bad("WRONGMAGICxxxxxxxxxxx");
  EXPECT_THROW(read_compressed(bad), std::runtime_error);
  std::vector<std::vector<Operation>> per_node{sample_ops()};
  std::stringstream ss;
  write_compressed(ss, per_node);
  std::string data = ss.str();
  data.resize(data.size() - 4);
  std::stringstream truncated(data);
  EXPECT_THROW(read_compressed(truncated), std::runtime_error);
}

TEST(TraceIoTest, CompressedHandlesLargeDeltasAndNegativePeers) {
  std::vector<Operation> ops{
      Operation::load(DataType::kInt8, 0xffff'ffff'ffffULL),
      Operation::load(DataType::kInt8, 0x10),  // huge negative delta
      Operation::recv(kNoNode, -5),            // negative peer and tag
      Operation::compute(std::uint64_t(1) << 60),
  };
  std::vector<std::vector<Operation>> per_node{ops};
  std::stringstream ss;
  write_compressed(ss, per_node);
  EXPECT_EQ(read_compressed(ss), per_node);
}

TEST(StreamTest, VectorSourceDrainsInOrder) {
  VectorSource src(sample_ops());
  std::vector<Operation> out;
  while (auto op = src.next()) out.push_back(*op);
  EXPECT_EQ(out, sample_ops());
  EXPECT_EQ(src.next(), std::nullopt);  // stays exhausted
  src.rewind();
  EXPECT_EQ(src.next(), sample_ops().front());
}

TEST(StreamTest, RecordingSourceCapturesPassthrough) {
  auto inner = std::make_unique<VectorSource>(sample_ops());
  RecordingSource rec(std::move(inner));
  while (rec.next()) {
  }
  EXPECT_EQ(rec.recorded(), sample_ops());
}

}  // namespace
}  // namespace merm::trace
