// Operation set tests: Table 1 coverage, classification, and naming.
#include "trace/operation.hpp"

#include <gtest/gtest.h>

namespace merm::trace {
namespace {

TEST(OperationTest, Table1ConstructorsProduceExpectedCodes) {
  EXPECT_EQ(Operation::load(DataType::kInt32, 0x100).code, OpCode::kLoad);
  EXPECT_EQ(Operation::store(DataType::kDouble, 0x200).code, OpCode::kStore);
  EXPECT_EQ(Operation::load_const(DataType::kFloat).code, OpCode::kLoadConst);
  EXPECT_EQ(Operation::add(DataType::kInt32).code, OpCode::kAdd);
  EXPECT_EQ(Operation::sub(DataType::kInt32).code, OpCode::kSub);
  EXPECT_EQ(Operation::mul(DataType::kDouble).code, OpCode::kMul);
  EXPECT_EQ(Operation::div(DataType::kDouble).code, OpCode::kDiv);
  EXPECT_EQ(Operation::ifetch(0x1000).code, OpCode::kIFetch);
  EXPECT_EQ(Operation::branch(0x1004).code, OpCode::kBranch);
  EXPECT_EQ(Operation::call(0x2000).code, OpCode::kCall);
  EXPECT_EQ(Operation::ret(0x1008).code, OpCode::kRet);
  EXPECT_EQ(Operation::send(64, 3).code, OpCode::kSend);
  EXPECT_EQ(Operation::recv(2).code, OpCode::kRecv);
  EXPECT_EQ(Operation::asend(64, 1).code, OpCode::kASend);
  EXPECT_EQ(Operation::arecv(0).code, OpCode::kARecv);
  EXPECT_EQ(Operation::compute(1000).code, OpCode::kCompute);
}

TEST(OperationTest, FieldsCarryOperands) {
  const Operation send = Operation::send(4096, 7, 42);
  EXPECT_EQ(send.value, 4096u);
  EXPECT_EQ(send.peer, 7);
  EXPECT_EQ(send.tag, 42);

  const Operation load = Operation::load(DataType::kDouble, 0xdead0);
  EXPECT_EQ(load.type, DataType::kDouble);
  EXPECT_EQ(load.value, 0xdead0u);
  EXPECT_EQ(load.peer, kNoNode);
}

TEST(OperationTest, ClassificationPartitionsTheOpcodeSpace) {
  for (int i = 0; i < kOpCodeCount; ++i) {
    const auto c = static_cast<OpCode>(i);
    const int classes = (is_computational(c) ? 1 : 0) +
                        (is_communication(c) ? 1 : 0) +
                        (c == OpCode::kCompute ? 1 : 0);
    EXPECT_EQ(classes, 1) << "opcode " << to_string(c);
  }
}

TEST(OperationTest, ComputationalSubcategories) {
  EXPECT_TRUE(is_memory_access(OpCode::kLoad));
  EXPECT_TRUE(is_memory_access(OpCode::kStore));
  EXPECT_FALSE(is_memory_access(OpCode::kLoadConst));
  EXPECT_TRUE(is_arithmetic(OpCode::kDiv));
  EXPECT_FALSE(is_arithmetic(OpCode::kLoad));
  EXPECT_TRUE(is_instruction_fetch(OpCode::kBranch));
  EXPECT_TRUE(is_instruction_fetch(OpCode::kCall));
  EXPECT_TRUE(is_instruction_fetch(OpCode::kRet));
  EXPECT_FALSE(is_instruction_fetch(OpCode::kAdd));
}

TEST(OperationTest, GlobalEventsAreExactlyCommunication) {
  for (int i = 0; i < kOpCodeCount; ++i) {
    const auto c = static_cast<OpCode>(i);
    EXPECT_EQ(is_global_event(c), is_communication(c));
  }
  EXPECT_TRUE(is_blocking(OpCode::kSend));
  EXPECT_TRUE(is_blocking(OpCode::kRecv));
  EXPECT_FALSE(is_blocking(OpCode::kASend));
  EXPECT_FALSE(is_blocking(OpCode::kARecv));
}

TEST(OperationTest, DataTypeSizes) {
  EXPECT_EQ(size_of(DataType::kInt8), 1u);
  EXPECT_EQ(size_of(DataType::kInt16), 2u);
  EXPECT_EQ(size_of(DataType::kInt32), 4u);
  EXPECT_EQ(size_of(DataType::kInt64), 8u);
  EXPECT_EQ(size_of(DataType::kFloat), 4u);
  EXPECT_EQ(size_of(DataType::kDouble), 8u);
  EXPECT_TRUE(is_floating(DataType::kFloat));
  EXPECT_FALSE(is_floating(DataType::kInt64));
}

TEST(OperationTest, NamesRoundTrip) {
  for (int i = 0; i < kOpCodeCount; ++i) {
    const auto c = static_cast<OpCode>(i);
    EXPECT_EQ(opcode_from_string(to_string(c)), c);
  }
  for (int i = 0; i < kDataTypeCount; ++i) {
    const auto t = static_cast<DataType>(i);
    EXPECT_EQ(datatype_from_string(to_string(t)), t);
  }
  EXPECT_EQ(opcode_from_string("bogus"), std::nullopt);
  EXPECT_EQ(datatype_from_string("f128"), std::nullopt);
}

TEST(OperationTest, ToStringUsesPaperNotation) {
  EXPECT_EQ(to_string(Operation::load(DataType::kInt32, 0x1f00)),
            "load(i32, 0x1f00)");
  EXPECT_EQ(to_string(Operation::mul(DataType::kDouble)), "mul(f64)");
  EXPECT_EQ(to_string(Operation::send(1024, 3, 7)), "send(1024, 3, tag=7)");
  EXPECT_EQ(to_string(Operation::compute(250)), "compute(250)");
}

}  // namespace
}  // namespace merm::trace
