// Prices the crash-safety machinery so its cost stays an explicit number:
//
//   * process isolation — the same grid in-process vs forked-per-point
//     (pipe codec, fork/waitpid, fd hygiene), with a byte-identity check
//     that the two modes really produce the same rows;
//   * the memo store — a cold sweep (all misses, rows stored) vs a warm
//     repeat (all hits, rows replayed), again byte-checked.
//
// Output is one parsable line per series (scripts/bench.sh turns them into
// BENCH_sweep_robust.json); exits non-zero if either byte-identity check or
// the expected hit pattern fails, so the bench doubles as a gate.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "explore/sweep.hpp"
#include "gen/apps.hpp"

namespace {

using namespace merm;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

explore::Sweep build_grid(unsigned points) {
  explore::Sweep sweep;
  sweep.workload = [](const machine::MachineParams& params, std::uint64_t) {
    return gen::make_offline_workload(
        params.node_count(),
        [](gen::Annotator& a, trace::NodeId self, std::uint32_t nodes) {
          gen::stencil_spmd(a, self, nodes, gen::StencilParams{16, 2});
        });
  };
  sweep.workload_fingerprint = "bench_sweep_robust:stencil16x2:v1";
  for (unsigned i = 0; i < points; ++i) {
    sweep.add(machine::presets::t805_multicomputer(2, 2),
              "pt-" + std::to_string(i));
  }
  return sweep;
}

std::string csv_of(const explore::SweepResult& r) {
  std::ostringstream os;
  r.write_csv(os, {.host_columns = false});
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  unsigned points = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--points=", 9) == 0) {
      points = static_cast<unsigned>(std::strtoul(argv[i] + 9, nullptr, 10));
    }
  }
  const explore::Sweep sweep = build_grid(points);

  // --- isolation overhead ---------------------------------------------
  auto t0 = std::chrono::steady_clock::now();
  const explore::SweepResult in_proc =
      explore::SweepEngine({.threads = 1}).run(sweep);
  const double in_proc_s = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  const explore::SweepResult isolated =
      explore::SweepEngine(
          {.threads = 1, .isolate = explore::Isolation::kProcess})
          .run(sweep);
  const double isolated_s = seconds_since(t0);

  if (csv_of(in_proc) != csv_of(isolated)) {
    std::cerr << "bench_sweep_robust: isolated rows diverge from in-process "
                 "rows\n";
    return 1;
  }
  std::printf(
      "SWEEP-ROBUST isolation points=%u in_process_seconds=%.4f "
      "isolated_seconds=%.4f overhead_x=%.3f\n",
      points, in_proc_s, isolated_s,
      in_proc_s > 0 ? isolated_s / in_proc_s : 0.0);

  // --- memo hit behaviour ---------------------------------------------
  char tmpl[] = "/tmp/merm-bench-memo-XXXXXX";
  const char* memo_dir = ::mkdtemp(tmpl);
  if (memo_dir == nullptr) {
    std::cerr << "bench_sweep_robust: mkdtemp failed\n";
    return 1;
  }
  explore::SweepOptions memo_opts{.threads = 1, .memo_dir = memo_dir};

  t0 = std::chrono::steady_clock::now();
  const explore::SweepResult cold = explore::SweepEngine(memo_opts).run(sweep);
  const double cold_s = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  const explore::SweepResult warm = explore::SweepEngine(memo_opts).run(sweep);
  const double warm_s = seconds_since(t0);

  if (cold.memo_hits != 0 || warm.memo_hits != points ||
      warm.memo_misses != 0) {
    std::cerr << "bench_sweep_robust: expected all-miss then all-hit, got "
              << cold.memo_hits << "/" << cold.memo_misses << " then "
              << warm.memo_hits << "/" << warm.memo_misses << "\n";
    return 1;
  }
  if (csv_of(cold) != csv_of(warm)) {
    std::cerr << "bench_sweep_robust: memo-replayed rows diverge from "
                 "simulated rows\n";
    return 1;
  }
  std::printf(
      "SWEEP-ROBUST memo points=%u cold_seconds=%.4f warm_seconds=%.4f "
      "hits=%llu misses=%llu hit_rate=%.3f warm_speedup_x=%.2f\n",
      points, cold_s, warm_s,
      static_cast<unsigned long long>(warm.memo_hits),
      static_cast<unsigned long long>(warm.memo_misses),
      static_cast<double>(warm.memo_hits) / points,
      warm_s > 0 ? cold_s / warm_s : 0.0);
  return 0;
}
