// Conservative-PDES thread scaling on the 32x32 T805 mesh (1024 nodes,
// task level).  One Workbench run per sim-thread count; at a fixed
// partitioning every run must produce bit-identical simulated results
// (that is the engine's contract, asserted here too), so the only thing
// allowed to change is wall time.  Partitions default to the largest
// requested thread count — coarse topology blocks, windows O(partitions) —
// and can be overridden with --partitions=<n> or --partitions=auto
// (auto ties the partitioning to each run's thread count, so the
// cross-thread determinism check is skipped in that mode).
//
// Output: a human table plus one machine-readable line per point
//   PDES sim_threads=<n> partitions=<p> windows=<w>
//        barriers_per_sim_second=<b> ops_per_sec=<r> speedup=<x>
//        host_seconds=<s>
// which scripts/bench.sh scrapes into BENCH_pdes.json.
//
//   bench_pdes_scaling [--rounds=N] [--threads=1,2,4,8]
//                      [--partitions=<n|auto>]
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/workbench.hpp"
#include "gen/stochastic.hpp"
#include "stats/stats.hpp"

using namespace merm;

namespace {

struct Point {
  unsigned sim_threads = 0;
  bool pdes_active = false;
  core::RunResult run;
  std::string counters;  // canonical stat dump, compared across points
};

Point run_point(unsigned sim_threads, std::uint32_t rounds,
                std::uint32_t partitions) {
  const auto arch = machine::presets::t805_multicomputer(32, 32);
  core::Workbench wb(arch);
  Point p;
  p.sim_threads = sim_threads;
  p.pdes_active = wb.enable_pdes(sim_threads, partitions).active;
  wb.register_all_stats();

  gen::StochasticDescription d;
  d.task_level = true;
  d.rounds = rounds;
  d.mean_task_ticks = 200 * sim::kTicksPerMicrosecond;
  d.comm.pattern = gen::CommPattern::kRandomPerm;
  d.comm.message_bytes = 4 * 1024;
  d.seed = 21;
  auto w = gen::make_stochastic_task_workload(d, arch.node_count());
  p.run = wb.run_task_level(w);

  std::ostringstream csv;
  wb.stats().write_csv(csv);
  p.counters = csv.str();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t rounds = 6;
  std::vector<unsigned> thread_counts = {1, 2, 4, 8};
  bool partitions_set = false;
  bool partitions_auto = false;
  std::uint32_t partitions = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rounds=", 0) == 0) {
      rounds = static_cast<std::uint32_t>(std::stoul(arg.substr(9)));
    } else if (arg.rfind("--threads=", 0) == 0) {
      thread_counts.clear();
      std::istringstream list(arg.substr(10));
      std::string tok;
      while (std::getline(list, tok, ',')) {
        thread_counts.push_back(static_cast<unsigned>(std::stoul(tok)));
      }
    } else if (arg.rfind("--partitions=", 0) == 0) {
      const std::string v = arg.substr(13);
      partitions_set = true;
      if (v == "auto") {
        partitions_auto = true;
        partitions = 0;
      } else {
        partitions = static_cast<std::uint32_t>(std::stoul(v));
      }
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--rounds=N] [--threads=a,b,c] [--partitions=<n|auto>]\n";
      return 2;
    }
  }
  if (thread_counts.empty()) {
    std::cerr << "--threads needs at least one count\n";
    return 2;
  }
  if (!partitions_set) {
    // Fixed partitioning across the whole curve: the coarse blocks the
    // widest run would pick, so every point simulates the identical model.
    partitions = *std::max_element(thread_counts.begin(), thread_counts.end());
  }

  std::cout << "# PDES thread scaling: 32x32 T805 mesh, task level, "
            << rounds << " rounds, partitions="
            << (partitions_auto ? std::string("auto")
                                : std::to_string(partitions))
            << "\n\n";

  stats::Table table({"sim threads", "partitions", "windows", "sim time",
                      "host s", "Mops/s", "speedup"});
  std::vector<Point> points;
  double base_seconds = 0.0;
  bool identical = true;
  for (const unsigned threads : thread_counts) {
    Point p = run_point(threads, rounds, partitions);
    if (!p.run.completed) {
      std::cerr << "workload deadlocked at sim_threads=" << threads << "\n";
      return 1;
    }
    if (!p.pdes_active) {
      std::cerr << "PDES fell back to serial at sim_threads=" << threads
                << "\n";
      return 1;
    }
    if (points.empty()) {
      base_seconds = p.run.host_seconds;
    } else if (!partitions_auto) {
      const Point& ref = points.front();
      identical = identical &&
                  p.run.simulated_time == ref.run.simulated_time &&
                  p.run.operations == ref.run.operations &&
                  p.run.messages == ref.run.messages &&
                  p.counters == ref.counters;
    }
    const double ops_per_sec =
        static_cast<double>(p.run.operations) / p.run.host_seconds;
    const double speedup = base_seconds / p.run.host_seconds;
    const double sim_seconds = static_cast<double>(p.run.simulated_time) /
                               static_cast<double>(sim::kTicksPerSecond);
    const double barriers_per_sim_second =
        sim_seconds > 0.0 ? static_cast<double>(p.run.pdes_windows) /
                                sim_seconds
                          : 0.0;
    table.add_row({std::to_string(threads),
                   std::to_string(p.run.pdes_partitions),
                   std::to_string(p.run.pdes_windows),
                   sim::format_time(p.run.simulated_time),
                   stats::Table::fmt(p.run.host_seconds, 4),
                   stats::Table::fmt(ops_per_sec / 1e6, 3),
                   stats::Table::fmt(speedup, 2)});
    std::cout << "PDES sim_threads=" << threads
              << " partitions=" << p.run.pdes_partitions
              << " windows=" << p.run.pdes_windows
              << " barriers_per_sim_second=" << barriers_per_sim_second
              << " ops_per_sec=" << ops_per_sec << " speedup=" << speedup
              << " host_seconds=" << p.run.host_seconds << "\n";
    points.push_back(std::move(p));
  }

  std::cout << "\n";
  table.print(std::cout);
  if (partitions_auto) {
    std::cout << "\ndeterminism check: skipped (--partitions=auto ties the "
                 "partitioning to the thread count)\n";
    return 0;
  }
  std::cout << "\ndeterminism check: stat tables across thread counts "
            << (identical ? "IDENTICAL" : "DIVERGED") << "\n";
  return identical ? 0 : 1;
}
