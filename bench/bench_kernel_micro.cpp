// Kernel microbenchmarks (google-benchmark): the raw costs that determine
// the slowdown figures of Section 6 — event throughput of the Pearl-
// replacement kernel, per-operation cost of the CPU+memory models, channel
// hand-offs, and trace-generation rates.
#include <benchmark/benchmark.h>

#include "cpu/cpu.hpp"
#include "gen/apps.hpp"
#include "gen/stochastic.hpp"
#include "memory/hierarchy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"

using namespace merm;

namespace {

// Pure event-queue throughput: schedule/execute trivial callbacks.
void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(static_cast<sim::Tick>(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1 << 12)->Arg(1 << 16);

// Coroutine process switching: two processes ping-ponging delays.
void BM_ProcessSwitching(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    for (int p = 0; p < 2; ++p) {
      sim.spawn([](sim::Simulator& s, int count) -> sim::Process {
        for (int i = 0; i < count; ++i) {
          co_await s.delay(10);
        }
      }(sim, n));
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_ProcessSwitching)->Arg(1 << 14);

// Channel rendezvous hand-off rate.
void BM_ChannelRendezvous(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Channel<int> ch;
    const int n = static_cast<int>(state.range(0));
    sim.spawn([](sim::Channel<int>& c, int count) -> sim::Process {
      for (int i = 0; i < count; ++i) co_await c.send(i);
    }(ch, n));
    sim.spawn([](sim::Channel<int>& c, int count) -> sim::Process {
      for (int i = 0; i < count; ++i) (void)co_await c.receive();
    }(ch, n));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChannelRendezvous)->Arg(1 << 14);

// The detailed model's inner loop: cost per simulated operation, with a
// warm and a thrashing cache, using the production dispatch of
// ComputeNode::run (local time cursor + frame-free fast path on a
// single-CPU node).
void RunOperationExecution(benchmark::State& state, bool thrash,
                           obs::TraceSink* sink = nullptr,
                           obs::Counter* op_counter = nullptr,
                           obs::Histogram* op_hist = nullptr) {
  machine::NodeParams node = machine::presets::powerpc601_node().node;
  sim::Simulator sim;
  memory::MemoryHierarchy mem(sim, node);
  cpu::Cpu cpu(sim, node.cpu, mem, 0);
  mem.cursor(0).set_enabled(sim.fast_paths());
  if (sink != nullptr) {
    cpu.attach_trace(sink, sink->add_track("bench.cpu0"));
    mem.bus().attach_trace(sink, sink->add_track("bench.bus"));
  }
  std::vector<trace::Operation> ops;
  const std::uint64_t span = thrash ? (8u << 20) : (8u << 10);
  for (int i = 0; i < 4096; ++i) {
    ops.push_back(trace::Operation::ifetch(0x1000 + (i % 256) * 4));
    ops.push_back(trace::Operation::load(
        trace::DataType::kDouble,
        0x100000 + (static_cast<std::uint64_t>(i) * 2987) % span));
    ops.push_back(trace::Operation::add(trace::DataType::kDouble));
  }
  for (auto _ : state) {
    sim.spawn([](sim::Simulator& s, cpu::Cpu& c, memory::MemoryHierarchy& m,
                 const std::vector<trace::Operation>& trace_ops,
                 obs::Counter* ctr, obs::Histogram* hist) -> sim::Process {
      if (ctr == nullptr) {
        for (const auto& op : trace_ops) {
          if (!c.try_execute_fast(op)) co_await c.execute(op);
        }
      } else {
        for (const auto& op : trace_ops) {
          const sim::Tick before = s.now();
          if (!c.try_execute_fast(op)) co_await c.execute(op);
          ctr->add();
          hist->observe(static_cast<double>(s.now() - before));
        }
      }
      co_await m.cursor(0).flush();
    }(sim, cpu, mem, ops, op_counter, op_hist));
    sim.run();
    sim.collect_finished();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ops.size()));
  state.SetLabel(thrash ? "thrashing" : "cache-resident");
}

void BM_OperationExecution(benchmark::State& state) {
  RunOperationExecution(state, state.range(0) != 0);
}
BENCHMARK(BM_OperationExecution)->Arg(0)->Arg(1);

// The same loop under the reference scheduler (MERM_REFERENCE_SCHED
// semantics: no cursor, no zero-delay inlining) — the A/B that keeps the
// fast path honest and the legacy cost visible.
void BM_OperationExecutionReference(benchmark::State& state) {
  sim::set_reference_scheduler_override(1);
  RunOperationExecution(state, state.range(0) != 0);
  sim::set_reference_scheduler_override(-1);
}
BENCHMARK(BM_OperationExecutionReference)->Arg(0)->Arg(1);

// The same loop with a TraceSink attached: what tracing costs when it is ON
// (the rings wrap in steady state, so the overwrite path is included).  The
// ≤2% obs-disabled claim is checked separately against BM_OperationExecution
// by scripts/check.sh.
void BM_OperationExecutionTraced(benchmark::State& state) {
  obs::TraceSink sink;
  RunOperationExecution(state, state.range(0) != 0, &sink);
}
BENCHMARK(BM_OperationExecutionTraced)->Arg(0)->Arg(1);

// The same loop recording runtime metrics per simulated operation — a
// counter bump plus a histogram observe on every op, orders of magnitude
// denser than any production call site (the sweep layer records ~4 updates
// per *point*, i.e. per ~1e5 ops).  scripts/check.sh uses the delta against
// BM_OperationExecution/0 as an absolute regression guard on the recording
// fast path; the ≤2% claim belongs to the disabled-hook path, which the
// baseline gate covers.
void BM_OperationExecutionMetrics(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Counter& ops = reg.counter("bench_ops_total", "ops executed");
  obs::Histogram& cost = reg.histogram(
      "bench_op_cost_ticks", {0.0, 100.0, 1'000.0, 10'000.0, 100'000.0},
      "per-op simulated cost");
  RunOperationExecution(state, state.range(0) != 0, nullptr, &ops, &cost);
  benchmark::DoNotOptimize(ops.value());
}
BENCHMARK(BM_OperationExecutionMetrics)->Arg(0)->Arg(1);

// Trace generation rates: stochastic vs annotated (offline).
void BM_StochasticGeneration(benchmark::State& state) {
  gen::StochasticDescription d;
  d.instructions_per_round = 50'000;
  d.rounds = 1;
  d.comm.pattern = gen::CommPattern::kNone;
  std::uint64_t n = 0;
  for (auto _ : state) {
    gen::StochasticSource src(d, 0, 1);
    n = 0;
    while (src.next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StochasticGeneration);

void BM_AnnotatedGeneration(benchmark::State& state) {
  std::size_t n = 0;
  for (auto _ : state) {
    gen::VarTable vars;
    gen::VectorSink sink;
    gen::Annotator a(vars, sink);
    gen::compute_kernel(a, 0, 1, gen::ComputeKernelParams{8192, 1, 1});
    n = sink.ops().size();
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AnnotatedGeneration);

}  // namespace

BENCHMARK_MAIN();
