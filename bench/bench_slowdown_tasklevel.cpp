// E-S6b — Section 6, task-level simulation performance.
//
// Paper: "simulation at this level of abstraction results in a typical
// slowdown of between 0.5 and 4 per processor", strongly dependent on the
// computation/communication ratio — "an entire multicomputer can be
// simulated with only a minor slowdown".
//
// We sweep the comm:comp ratio of a synthetic task workload on a 16-node
// T805 mesh and report slowdown per simulated processor.  Shape to hold:
// values around O(1), decreasing as computation (simulated almost for free
// at task level) starts to dominate, and always orders of magnitude below
// detailed mode.
#include <iostream>

#include "core/workbench.hpp"
#include "gen/stochastic.hpp"
#include "stats/stats.hpp"

using namespace merm;

int main() {
  std::cout << "# E-S6b: task-level slowdown per simulated processor\n";
  std::cout << "# paper: typical 0.5 - 4 per processor\n\n";

  const auto arch = machine::presets::t805_multicomputer(4, 4);
  const std::uint32_t nodes = arch.node_count();

  stats::Table table({"mean compute/round", "msg bytes", "messages",
                      "sim time", "host s", "slowdown/proc"});

  double min_slowdown = 1e30;
  double max_slowdown = 0;
  struct Point {
    sim::Tick compute;
    std::uint64_t bytes;
  };
  // From communication-bound to computation-bound.
  const Point points[] = {
      {50 * sim::kTicksPerMicrosecond, 16 * 1024},
      {200 * sim::kTicksPerMicrosecond, 16 * 1024},
      {1000 * sim::kTicksPerMicrosecond, 8 * 1024},
      {5000 * sim::kTicksPerMicrosecond, 4 * 1024},
      {20000 * sim::kTicksPerMicrosecond, 1024},
  };
  for (const Point& p : points) {
    gen::StochasticDescription d;
    d.task_level = true;
    d.rounds = 60;
    d.mean_task_ticks = p.compute;
    d.comm.pattern = gen::CommPattern::kRandomPerm;
    d.comm.message_bytes = p.bytes;
    d.seed = 5;

    core::Workbench wb(arch);
    auto w = gen::make_stochastic_task_workload(d, nodes);
    const core::RunResult r = wb.run_task_level(w);
    if (!r.completed) {
      std::cerr << "workload deadlocked\n";
      return 1;
    }
    const double slowdown = r.slowdown_per_processor();
    min_slowdown = std::min(min_slowdown, slowdown);
    max_slowdown = std::max(max_slowdown, slowdown);
    table.add_row({sim::format_time(p.compute), std::to_string(p.bytes),
                   std::to_string(r.messages),
                   sim::format_time(r.simulated_time),
                   stats::Table::fmt(r.host_seconds, 4),
                   stats::Table::fmt(slowdown, 3)});
  }
  table.print(std::cout);

  std::cout << "\nslowdown/proc range: " << stats::Table::fmt(min_slowdown, 3)
            << " - " << stats::Table::fmt(max_slowdown, 3)
            << "  (paper: 0.5 - 4)\n";
  std::cout << "shape check: O(1) slowdown, decreasing as computation "
               "dominates — "
            << (max_slowdown < 50 && min_slowdown < 1.0 ? "HOLDS" : "FAILS")
            << "\n";
  return (max_slowdown < 50 && min_slowdown < 1.0) ? 0 : 1;
}
