// E-A3 — router parameterization (Section 4.2): switching strategy,
// topology and message-size sweeps under controlled traffic.
//
// Shapes to hold:
//  - zero-load: wormhole/VCT latency ~flat in hop count's serialization
//    term, store-and-forward grows linearly with hops x message size;
//  - crossover: SAF is competitive for short messages / few hops only;
//  - under load: wormhole saturates earlier than VCT on long paths (path
//    holding), all switching strategies converge on low-diameter topologies.
#include <iostream>

#include "machine/config.hpp"
#include "network/network.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"

using namespace merm;

namespace {

machine::RouterParams base_router(machine::Switching sw) {
  machine::RouterParams r;
  r.switching = sw;
  r.routing = machine::RoutingAlgorithm::kDimensionOrder;
  r.frequency_hz = 100e6;
  r.routing_decision_cycles = 2;
  r.header_bytes = 8;
  r.flit_bytes = 4;
  r.max_packet_bytes = 4096;
  r.input_buffer_flits = 4096;
  return r;
}

machine::LinkParams base_link() {
  machine::LinkParams l;
  l.bandwidth_bytes_per_s = 100e6;
  l.propagation_delay = 10 * sim::kTicksPerNanosecond;
  return l;
}

sim::Tick one_message_latency(machine::TopologyKind kind,
                              std::array<std::uint32_t, 2> dims,
                              machine::Switching sw, trace::NodeId src,
                              trace::NodeId dst, std::uint64_t bytes) {
  sim::Simulator sim;
  machine::TopologyParams topo;
  topo.kind = kind;
  topo.dims = dims;
  network::Network net(sim, topo, base_router(sw), base_link());
  sim::Tick latency = 0;
  sim.spawn([](sim::Simulator& s, network::Network& n, trace::NodeId a,
               trace::NodeId b, std::uint64_t sz,
               sim::Tick* out) -> sim::Process {
    const sim::Tick t0 = s.now();
    co_await n.transmit(a, b, sz);
    *out = s.now() - t0;
  }(sim, net, src, dst, bytes, &latency));
  sim.run();
  return latency;
}

}  // namespace

int main() {
  std::cout << "# E-A3: switching / topology / message-size sweeps\n\n";

  // 1. Zero-load latency vs hop count (ring walk), 1 KiB messages.
  std::cout << "## zero-load latency vs hops (ring of 16, 1 KiB message)\n";
  {
    stats::Table t({"hops", "store&fwd", "virtual cut-through", "wormhole",
                    "SAF/WH ratio"});
    for (std::uint32_t hops : {1u, 2u, 4u, 8u}) {
      const auto saf =
          one_message_latency(machine::TopologyKind::kRing, {16, 1},
                              machine::Switching::kStoreAndForward, 0,
                              static_cast<trace::NodeId>(hops), 1024);
      const auto vct =
          one_message_latency(machine::TopologyKind::kRing, {16, 1},
                              machine::Switching::kVirtualCutThrough, 0,
                              static_cast<trace::NodeId>(hops), 1024);
      const auto wh = one_message_latency(
          machine::TopologyKind::kRing, {16, 1}, machine::Switching::kWormhole,
          0, static_cast<trace::NodeId>(hops), 1024);
      t.add_row({std::to_string(hops), sim::format_time(saf),
                 sim::format_time(vct), sim::format_time(wh),
                 stats::Table::fmt(static_cast<double>(saf) /
                                       static_cast<double>(wh),
                                   2)});
    }
    t.print(std::cout);
    std::cout << "shape: SAF grows ~linearly with hops; WH/VCT stay near one "
                 "serialization.\n\n";
  }

  // 2. Latency vs message size at fixed distance (4 hops).
  std::cout << "## latency vs message size (4 hops)\n";
  {
    stats::Table t({"bytes", "store&fwd", "wormhole", "ratio"});
    for (std::uint64_t bytes : {64u, 256u, 1024u, 4096u, 16384u}) {
      const auto saf =
          one_message_latency(machine::TopologyKind::kRing, {16, 1},
                              machine::Switching::kStoreAndForward, 0, 4,
                              bytes);
      const auto wh =
          one_message_latency(machine::TopologyKind::kRing, {16, 1},
                              machine::Switching::kWormhole, 0, 4, bytes);
      t.add_row({std::to_string(bytes), sim::format_time(saf),
                 sim::format_time(wh),
                 stats::Table::fmt(static_cast<double>(saf) /
                                       static_cast<double>(wh),
                                   2)});
    }
    t.print(std::cout);
    std::cout << "shape: the SAF penalty grows with message size (re-"
                 "serialization per hop),\nuntil packetization (4 KiB) caps "
                 "it.\n\n";
  }

  // 3. Topology sweep under uniform random load, 16 nodes, wormhole.
  std::cout << "## topology sweep (16 nodes, wormhole, 200 random 1 KiB "
               "messages)\n";
  {
    stats::Table t({"topology", "diameter", "mean latency", "p99-ish",
                    "mean link util"});
    struct Case {
      machine::TopologyKind kind;
      std::array<std::uint32_t, 2> dims;
    };
    for (const Case& c :
         {Case{machine::TopologyKind::kRing, {16, 1}},
          Case{machine::TopologyKind::kMesh2D, {4, 4}},
          Case{machine::TopologyKind::kTorus2D, {4, 4}},
          Case{machine::TopologyKind::kHypercube, {16, 1}},
          Case{machine::TopologyKind::kStar, {16, 1}},
          Case{machine::TopologyKind::kFullyConnected, {16, 1}}}) {
      sim::Simulator sim;
      machine::TopologyParams topo;
      topo.kind = c.kind;
      topo.dims = c.dims;
      network::Network net(sim, topo, base_router(machine::Switching::kWormhole),
                           base_link());
      sim::Rng rng(7);
      for (int i = 0; i < 200; ++i) {
        const auto src = static_cast<trace::NodeId>(rng.next_below(16));
        auto dst = static_cast<trace::NodeId>(rng.next_below(16));
        if (dst == src) dst = static_cast<trace::NodeId>((dst + 1) % 16);
        const sim::Tick start = rng.next_below(200) * sim::kTicksPerMicrosecond;
        sim.schedule_at(start, [&net, &sim, src, dst] {
          sim.spawn([](network::Network& n, trace::NodeId a,
                       trace::NodeId b) -> sim::Process {
            co_await n.transmit(a, b, 1024);
          }(net, src, dst));
        });
      }
      sim.run();
      t.add_row(
          {machine::to_string(c.kind),
           std::to_string(net.topology().diameter()),
           sim::format_time(
               static_cast<sim::Tick>(net.message_latency_ticks.mean())),
           sim::format_time(net.latency_histogram.quantile_upper_bound(0.99) *
                            sim::kTicksPerNanosecond),
           stats::Table::fmt(net.mean_link_utilization(sim.now()), 4)});
    }
    t.print(std::cout);
    std::cout << "shape: latency tracks diameter; the star's hub and the "
                 "ring's long paths\nshow up as tail latency.\n";
  }
  return 0;
}
