// E-A3 — router parameterization (Section 4.2): switching strategy,
// topology and message-size sweeps under controlled traffic.  Each probe
// builds its own Simulator + Network, so the rows of every table are
// independent jobs: the sweep engine's generic fan-out runs them
// concurrently with results in row order.
//
// Shapes to hold:
//  - zero-load: wormhole/VCT latency ~flat in hop count's serialization
//    term, store-and-forward grows linearly with hops x message size;
//  - crossover: SAF is competitive for short messages / few hops only;
//  - under load: wormhole saturates earlier than VCT on long paths (path
//    holding), all switching strategies converge on low-diameter topologies.
#include <functional>
#include <iostream>
#include <vector>

#include "explore/sweep.hpp"
#include "machine/config.hpp"
#include "network/network.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"

using namespace merm;

namespace {

unsigned g_threads = 0;  // 0 = auto; set from --threads

machine::RouterParams base_router(machine::Switching sw) {
  machine::RouterParams r;
  r.switching = sw;
  r.routing = machine::RoutingAlgorithm::kDimensionOrder;
  r.frequency_hz = 100e6;
  r.routing_decision_cycles = 2;
  r.header_bytes = 8;
  r.flit_bytes = 4;
  r.max_packet_bytes = 4096;
  r.input_buffer_flits = 4096;
  return r;
}

machine::LinkParams base_link() {
  machine::LinkParams l;
  l.bandwidth_bytes_per_s = 100e6;
  l.propagation_delay = 10 * sim::kTicksPerNanosecond;
  return l;
}

sim::Tick one_message_latency(machine::TopologyKind kind,
                              std::array<std::uint32_t, 2> dims,
                              machine::Switching sw, trace::NodeId src,
                              trace::NodeId dst, std::uint64_t bytes) {
  sim::Simulator sim;
  machine::TopologyParams topo;
  topo.kind = kind;
  topo.dims = dims;
  network::Network net(sim, topo, base_router(sw), base_link());
  sim::Tick latency = 0;
  sim.spawn([](sim::Simulator& s, network::Network& n, trace::NodeId a,
               trace::NodeId b, std::uint64_t sz,
               sim::Tick* out) -> sim::Process {
    const sim::Tick t0 = s.now();
    co_await n.transmit(a, b, sz);
    *out = s.now() - t0;
  }(sim, net, src, dst, bytes, &latency));
  sim.run();
  return latency;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    g_threads = explore::threads_from_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  explore::SweepEngine engine({.threads = g_threads});
  std::cout << "# E-A3: switching / topology / message-size sweeps\n\n";

  // 1. Zero-load latency vs hop count (ring walk), 1 KiB messages.
  std::cout << "## zero-load latency vs hops (ring of 16, 1 KiB message)\n";
  {
    struct Row {
      sim::Tick saf, vct, wh;
    };
    const std::vector<std::uint32_t> hop_counts = {1u, 2u, 4u, 8u};
    std::vector<std::function<Row()>> jobs;
    for (const std::uint32_t hops : hop_counts) {
      jobs.push_back([hops] {
        const auto probe = [hops](machine::Switching sw) {
          return one_message_latency(machine::TopologyKind::kRing, {16, 1},
                                     sw, 0, static_cast<trace::NodeId>(hops),
                                     1024);
        };
        return Row{probe(machine::Switching::kStoreAndForward),
                   probe(machine::Switching::kVirtualCutThrough),
                   probe(machine::Switching::kWormhole)};
      });
    }
    const std::vector<Row> rows = engine.run_jobs(jobs);

    stats::Table t({"hops", "store&fwd", "virtual cut-through", "wormhole",
                    "SAF/WH ratio"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
      t.add_row({std::to_string(hop_counts[i]), sim::format_time(rows[i].saf),
                 sim::format_time(rows[i].vct), sim::format_time(rows[i].wh),
                 stats::Table::fmt(static_cast<double>(rows[i].saf) /
                                       static_cast<double>(rows[i].wh),
                                   2)});
    }
    t.print(std::cout);
    std::cout << "shape: SAF grows ~linearly with hops; WH/VCT stay near one "
                 "serialization.\n\n";
  }

  // 2. Latency vs message size at fixed distance (4 hops).
  std::cout << "## latency vs message size (4 hops)\n";
  {
    struct Row {
      sim::Tick saf, wh;
    };
    const std::vector<std::uint64_t> sizes = {64u, 256u, 1024u, 4096u, 16384u};
    std::vector<std::function<Row()>> jobs;
    for (const std::uint64_t bytes : sizes) {
      jobs.push_back([bytes] {
        return Row{
            one_message_latency(machine::TopologyKind::kRing, {16, 1},
                                machine::Switching::kStoreAndForward, 0, 4,
                                bytes),
            one_message_latency(machine::TopologyKind::kRing, {16, 1},
                                machine::Switching::kWormhole, 0, 4, bytes)};
      });
    }
    const std::vector<Row> rows = engine.run_jobs(jobs);

    stats::Table t({"bytes", "store&fwd", "wormhole", "ratio"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
      t.add_row({std::to_string(sizes[i]), sim::format_time(rows[i].saf),
                 sim::format_time(rows[i].wh),
                 stats::Table::fmt(static_cast<double>(rows[i].saf) /
                                       static_cast<double>(rows[i].wh),
                                   2)});
    }
    t.print(std::cout);
    std::cout << "shape: the SAF penalty grows with message size (re-"
                 "serialization per hop),\nuntil packetization (4 KiB) caps "
                 "it.\n\n";
  }

  // 3. Topology sweep under uniform random load, 16 nodes, wormhole.
  std::cout << "## topology sweep (16 nodes, wormhole, 200 random 1 KiB "
               "messages)\n";
  {
    struct Case {
      machine::TopologyKind kind;
      std::array<std::uint32_t, 2> dims;
    };
    const std::vector<Case> cases = {
        {machine::TopologyKind::kRing, {16, 1}},
        {machine::TopologyKind::kMesh2D, {4, 4}},
        {machine::TopologyKind::kTorus2D, {4, 4}},
        {machine::TopologyKind::kHypercube, {16, 1}},
        {machine::TopologyKind::kStar, {16, 1}},
        {machine::TopologyKind::kFullyConnected, {16, 1}}};

    struct Row {
      std::uint32_t diameter;
      sim::Tick mean_latency;
      sim::Tick p99;
      double link_util;
    };
    std::vector<std::function<Row()>> jobs;
    for (const Case& c : cases) {
      jobs.push_back([c] {
        sim::Simulator sim;
        machine::TopologyParams topo;
        topo.kind = c.kind;
        topo.dims = c.dims;
        network::Network net(sim, topo,
                             base_router(machine::Switching::kWormhole),
                             base_link());
        sim::Rng rng(7);
        for (int i = 0; i < 200; ++i) {
          const auto src = static_cast<trace::NodeId>(rng.next_below(16));
          auto dst = static_cast<trace::NodeId>(rng.next_below(16));
          if (dst == src) dst = static_cast<trace::NodeId>((dst + 1) % 16);
          const sim::Tick start =
              rng.next_below(200) * sim::kTicksPerMicrosecond;
          sim.schedule_at(start, [&net, &sim, src, dst] {
            sim.spawn([](network::Network& n, trace::NodeId a,
                         trace::NodeId b) -> sim::Process {
              co_await n.transmit(a, b, 1024);
            }(net, src, dst));
          });
        }
        sim.run();
        return Row{
            net.topology().diameter(),
            static_cast<sim::Tick>(net.message_latency_ticks.mean()),
            net.latency_histogram.quantile_upper_bound(0.99) *
                sim::kTicksPerNanosecond,
            net.mean_link_utilization(sim.now())};
      });
    }
    const std::vector<Row> rows = engine.run_jobs(jobs);

    stats::Table t({"topology", "diameter", "mean latency", "p99-ish",
                    "mean link util"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
      t.add_row({machine::to_string(cases[i].kind),
                 std::to_string(rows[i].diameter),
                 sim::format_time(rows[i].mean_latency),
                 sim::format_time(rows[i].p99),
                 stats::Table::fmt(rows[i].link_util, 4)});
    }
    t.print(std::cout);
    std::cout << "shape: latency tracks diameter; the star's hub and the "
                 "ring's long paths\nshow up as tail latency.\n";
  }
  return 0;
}
