// Ablation — intra-node coherence strategy (Section 4.1: the template ships
// snoopy; "other strategies, like directory schemes, can be added with
// relative ease").
//
// Sweep the CPU count of one shared-memory node under a sharing-heavy
// synthetic load and compare snoopy vs directory coherence.
//
// Shape to hold: with few sharers the broadcast bus is cheap and the
// directory's lookup latency is pure overhead; as CPUs (and invalidation
// fan-out) grow, the directory's per-sharer point-to-point cost rises while
// its non-broadcast misses keep the bus freer — the classic tradeoff whose
// crossover the workbench lets a designer locate for *their* parameters.
#include <iostream>

#include "core/workbench.hpp"
#include "gen/stochastic.hpp"
#include "stats/stats.hpp"

using namespace merm;

int main() {
  std::cout << "# ablation: snoopy vs directory coherence "
               "(shared-memory node)\n\n";

  stats::Table t({"cpus", "snoopy time", "snoopy bus txns", "directory time",
                  "directory bus txns", "dir/snoopy time"});

  for (const std::uint32_t cpus : {2u, 4u, 8u}) {
    struct Outcome {
      sim::Tick time;
      std::uint64_t bus_txns;
    };
    auto run = [cpus](machine::CoherenceKind kind) {
      machine::MachineParams arch = machine::presets::powerpc601_node();
      arch.node.cpu_count = cpus;
      arch.node.memory.coherence = kind;
      core::Workbench wb(arch);
      gen::StochasticDescription d;
      d.instructions_per_round = 6000;
      d.rounds = 2;
      d.comm.pattern = gen::CommPattern::kNone;
      // Hot shared working set: plenty of cross-CPU sharing.
      d.memory.data_working_set = 8 * 1024;
      d.mix.store = 0.2;
      d.seed = 3;
      auto w = gen::make_stochastic_workload(d, 1, cpus);
      const auto r = wb.run_detailed(w);
      if (!r.completed) throw std::runtime_error("blocked");
      return Outcome{
          r.simulated_time,
          wb.machine().compute_node(0).memory().bus().transactions.value()};
    };

    const Outcome snoopy = run(machine::CoherenceKind::kSnoopy);
    const Outcome directory = run(machine::CoherenceKind::kDirectory);
    t.add_row({std::to_string(cpus), sim::format_time(snoopy.time),
               std::to_string(snoopy.bus_txns),
               sim::format_time(directory.time),
               std::to_string(directory.bus_txns),
               stats::Table::fmt(static_cast<double>(directory.time) /
                                     static_cast<double>(snoopy.time),
                                 3)});
  }
  t.print(std::cout);
  std::cout << "\nshape: the directory issues more (smaller) transactions "
               "and pays its\nlookup on every miss; on a single shared bus "
               "snooping stays cheaper —\nthe directory's win (no broadcast "
               "medium needed) shows on switched fabrics,\nwhich is exactly "
               "why the parameterization matters.\n";
  return 0;
}
