// E-F2 — the hybrid model (Fig. 2) quantified: accuracy retained and events
// saved when moving from detailed simulation to the derived task-level
// model, across workloads.
//
// Shape to hold: task-level replay reproduces detailed execution time within
// a few percent on the same machine while using 1-2 orders of magnitude
// fewer kernel events — the quantitative basis for the paper's two-level
// design.
#include <iostream>

#include "core/workbench.hpp"
#include "gen/apps.hpp"
#include "stats/stats.hpp"

using namespace merm;

int main() {
  std::cout << "# E-F2: hybrid model — detailed vs derived task-level\n\n";

  struct Case {
    const char* name;
    std::uint32_t nodes;
    gen::AppFn app;
  };
  const Case cases[] = {
      {"stencil 64x64x4", 4,
       [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
         gen::stencil_spmd(a, s, n, gen::StencilParams{64, 4});
       }},
      {"matmul 32", 4,
       [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
         gen::matmul_spmd(a, s, n, gen::MatmulParams{32});
       }},
      {"allreduce 1024x4", 4,
       [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
         gen::allreduce_spmd(a, s, n, gen::AllReduceParams{1024, 4});
       }},
      {"master-worker", 4,
       [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
         gen::master_worker(a, s, n,
                            gen::MasterWorkerParams{24, 2048, 1024, 256});
       }},
  };

  stats::Table t({"workload", "detailed time", "task-level time", "error",
                  "event ratio", "host speedup"});
  bool all_hold = true;
  for (const Case& c : cases) {
    machine::MachineParams arch = machine::presets::t805_multicomputer(2, 2);
    core::Workbench detailed(arch);
    auto w = gen::make_offline_workload(c.nodes, c.app);
    std::vector<node::TaskRecorder> recorders;
    const auto rd = detailed.run_detailed(w, sim::kTickMax, &recorders);
    if (!rd.completed) return 1;

    core::Workbench task(arch);
    trace::Workload tasks;
    for (const auto& rec : recorders) {
      tasks.sources.push_back(
          std::make_unique<trace::VectorSource>(rec.task_trace()));
    }
    const auto rt = task.run_task_level(tasks);
    if (!rt.completed) return 1;

    const double err = std::abs(static_cast<double>(rt.simulated_time) -
                                static_cast<double>(rd.simulated_time)) /
                       static_cast<double>(rd.simulated_time);
    const double event_ratio = static_cast<double>(rd.events_processed) /
                               static_cast<double>(rt.events_processed);
    all_hold = all_hold && err < 0.10 && event_ratio > 10;
    t.add_row({c.name, sim::format_time(rd.simulated_time),
               sim::format_time(rt.simulated_time),
               stats::Table::fmt(100 * err, 2) + "%",
               stats::Table::fmt(event_ratio, 0) + "x",
               stats::Table::fmt(rd.host_seconds /
                                     std::max(rt.host_seconds, 1e-6),
                                 0) + "x"});
  }
  t.print(std::cout);
  std::cout << "\nshape check: <10% error at >10x fewer events across "
               "workloads — "
            << (all_hold ? "HOLDS" : "FAILS") << "\n";
  return all_hold ? 0 : 1;
}
