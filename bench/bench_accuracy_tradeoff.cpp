// E-A1 — the paper's Section 2 argument as an experiment: direct execution
// is fast but blind to node-architecture parameters.
//
// For a streaming kernel we sweep the L1 size and compare three predictors:
//   1. detailed Mermaid simulation (reacts to the cache),
//   2. direct-execution baseline with a static memory estimate calibrated
//      at the *largest* cache (flat across the sweep),
//   3. the same baseline's slowdown (orders of magnitude faster).
//
// Shape to hold: detailed time falls as L1 grows; direct execution predicts
// a constant; direct execution's host cost is a small fraction of detailed.
#include <iostream>

#include "core/workbench.hpp"
#include "gen/apps.hpp"
#include "gen/direct_execution.hpp"
#include "stats/stats.hpp"

using namespace merm;

int main() {
  std::cout << "# E-A1: accuracy/flexibility vs speed — detailed simulation "
               "against the\n# direct-execution technique (Section 2)\n\n";

  const gen::AppFn app = [](gen::Annotator& a, trace::NodeId s,
                            std::uint32_t n) {
    gen::compute_kernel(a, s, n, gen::ComputeKernelParams{16384, 4, 1});
  };
  const auto traces = gen::record_app_traces(1, app);

  gen::DirectExecutionModel dem;
  dem.cpu = machine::presets::generic_risc(1, 1).node.cpu;
  dem.assumed_memory_cycles = 2;  // compile-time estimate: mostly-hit

  stats::Table table({"L1 size", "detailed sim time", "detailed host s",
                      "direct-exec time", "direct host s", "direct error"});

  double detailed_host = 0;
  double direct_host = 0;
  sim::Tick first_detailed = 0;
  sim::Tick last_detailed = 0;
  for (const std::uint64_t l1 :
       {8 * 1024, 32 * 1024, 128 * 1024, 512 * 1024}) {
    machine::MachineParams arch = machine::presets::generic_risc(1, 1);
    arch.topology.dims = {1, 1};
    arch.node.memory.split_l1 = false;
    arch.node.memory.levels = {machine::CacheLevelParams{
        l1, 32, 4, 1, machine::WritePolicy::kWriteBack, true}};

    core::Workbench detailed(arch);
    auto w = gen::make_offline_workload(1, app);
    const auto rd = detailed.run_detailed(w);
    if (!rd.completed) return 1;
    if (first_detailed == 0) first_detailed = rd.simulated_time;
    last_detailed = rd.simulated_time;
    detailed_host += rd.host_seconds;

    core::Workbench direct(arch);
    auto wd = gen::make_direct_execution_workload(traces, dem);
    const auto rx = direct.run_task_level(wd);
    if (!rx.completed) return 1;
    direct_host += rx.host_seconds;

    const double err =
        std::abs(static_cast<double>(rx.simulated_time) -
                 static_cast<double>(rd.simulated_time)) /
        static_cast<double>(rd.simulated_time);
    table.add_row({sim::format_bytes(l1), sim::format_time(rd.simulated_time),
                   stats::Table::fmt(rd.host_seconds, 3),
                   sim::format_time(rx.simulated_time),
                   stats::Table::fmt(rx.host_seconds, 4),
                   stats::Table::fmt(100 * err, 1) + "%"});
  }
  table.print(std::cout);

  const bool detail_reacts = first_detailed > last_detailed * 11 / 10;
  std::cout << "\ndetailed model reacts to the L1 sweep ("
            << stats::Table::fmt(
                   static_cast<double>(first_detailed) /
                       static_cast<double>(last_detailed),
                   2)
            << "x swing); direct execution is flat by construction.\n";
  std::cout << "direct execution used "
            << stats::Table::fmt(
                   detailed_host / std::max(direct_host, 1e-9), 0)
            << "x less host time (paper: direct execution slowdown 2-"
               "few hundred vs 750-4000).\n";
  std::cout << "shape check: " << (detail_reacts ? "HOLDS" : "FAILS") << "\n";
  return detail_reacts ? 0 : 1;
}
