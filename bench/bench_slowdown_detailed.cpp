// E-S6a — Section 6, detailed-mode simulation performance.
//
// Paper: "For a mix of application loads, we measured a typical slowdown of
// about 750 to 4,000 per processor" for (a) a multicomputer of T805
// transputers and (b) a single-node PowerPC 601 model with two cache levels;
// direct-execution simulators achieve 2 to a few hundred.
//
// We reproduce the *shape*: the operation-level slowdown per simulated
// processor is orders of magnitude above 1 and far above the
// direct-execution baseline measured by bench_accuracy_tradeoff; absolute
// values differ because the host and the kernel implementation differ (the
// paper itself calls the metric host- and workload-dependent).
#include <iostream>

#include "core/workbench.hpp"
#include "gen/apps.hpp"
#include "gen/stochastic.hpp"
#include "stats/stats.hpp"

using namespace merm;

namespace {

struct Row {
  std::string machine;
  std::string workload;
  core::RunResult result;
};

core::RunResult run_detailed(const machine::MachineParams& params,
                             trace::Workload workload) {
  core::Workbench wb(params);
  return wb.run_detailed(workload);
}

}  // namespace

int main() {
  std::cout << "# E-S6a: detailed-mode slowdown per simulated processor\n";
  std::cout << "# paper: typical 750-4000 per processor (Ultra Sparc 143MHz "
               "host);\n";
  std::cout << "# host: " << core::host_frequency_hz() / 1e6 << " MHz\n\n";

  std::vector<Row> rows;

  // (a) T805 multicomputer, mixed application loads.
  for (std::uint32_t side : {2u, 4u}) {
    const auto arch = machine::presets::t805_multicomputer(side, side);
    const std::uint32_t n = arch.node_count();
    rows.push_back({arch.name + " " + std::to_string(side) + "x" +
                        std::to_string(side),
                    "matmul",
                    run_detailed(arch, gen::make_offline_workload(
                                           n,
                                           [](gen::Annotator& a,
                                              trace::NodeId s,
                                              std::uint32_t nn) {
                                             gen::matmul_spmd(
                                                 a, s, nn,
                                                 gen::MatmulParams{32});
                                           }))});
    rows.push_back({arch.name + " " + std::to_string(side) + "x" +
                        std::to_string(side),
                    "stencil",
                    run_detailed(arch, gen::make_offline_workload(
                                           n,
                                           [](gen::Annotator& a,
                                              trace::NodeId s,
                                              std::uint32_t nn) {
                                             gen::stencil_spmd(
                                                 a, s, nn,
                                                 gen::StencilParams{64, 4});
                                           }))});
    gen::StochasticDescription d;
    d.instructions_per_round = 30'000;
    d.rounds = 4;
    d.comm.pattern = gen::CommPattern::kRing;
    d.comm.message_bytes = 4096;
    rows.push_back({arch.name + " " + std::to_string(side) + "x" +
                        std::to_string(side),
                    "stochastic mix",
                    run_detailed(arch, gen::make_stochastic_workload(d, n))});
  }

  // (b) PowerPC 601 single node with two cache levels.
  {
    const auto arch = machine::presets::powerpc601_node();
    rows.push_back(
        {arch.name, "compute kernel",
         run_detailed(arch,
                      gen::make_offline_workload(
                          1, [](gen::Annotator& a, trace::NodeId s,
                                std::uint32_t nn) {
                            gen::compute_kernel(
                                a, s, nn, gen::ComputeKernelParams{16384, 8, 1});
                          }))});
    gen::StochasticDescription d;
    d.instructions_per_round = 150'000;
    d.rounds = 2;
    d.comm.pattern = gen::CommPattern::kNone;
    rows.push_back(
        {arch.name, "stochastic mix",
         run_detailed(arch, gen::make_stochastic_workload(d, 1))});
  }

  stats::Table table({"machine", "workload", "procs", "sim cycles",
                      "host s", "slowdown/proc", "target cycles/host-s"});
  double min_slowdown = 1e30;
  double max_slowdown = 0;
  for (const Row& row : rows) {
    const double slowdown = row.result.slowdown_per_processor();
    min_slowdown = std::min(min_slowdown, slowdown);
    max_slowdown = std::max(max_slowdown, slowdown);
    table.add_row({row.machine, row.workload,
                   std::to_string(row.result.processors),
                   std::to_string(row.result.simulated_cpu_cycles),
                   stats::Table::fmt(row.result.host_seconds, 3),
                   stats::Table::fmt(slowdown, 0),
                   stats::Table::fmt(row.result.cycles_per_host_second(), 0)});
  }
  table.print(std::cout);

  std::cout << "\nslowdown/proc range over the mix: "
            << stats::Table::fmt(min_slowdown, 0) << " - "
            << stats::Table::fmt(max_slowdown, 0)
            << "  (paper: 750 - 4000 on a 1997 host)\n";
  // Even with the two-tier scheduler (local time cursors keep cache hits and
  // issue costs off the event queue), simulating every instruction keeps
  // detailed mode clearly above the sub-1/proc floor of the task-level mode
  // (bench_slowdown_tasklevel asserts min < 1.0 there).
  std::cout << "shape check: detailed-mode slowdown stays above the\n"
               "sub-1/proc task-level floor (bench_slowdown_tasklevel) — "
            << (min_slowdown > 1.5 ? "HOLDS" : "FAILS") << "\n";
  return min_slowdown > 1.5 ? 0 : 1;
}
