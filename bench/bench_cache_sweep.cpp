// E-F3 (single-node template, Fig. 3a) — cache-hierarchy parameterization
// sweeps on the PowerPC 601 node model.
//
// Shapes to hold: hit rate knees at the working-set size; associativity
// matters most for conflict-heavy strides; write-through raises bus traffic
// versus write-back; a second level rescues a small L1.
#include <iostream>

#include "core/workbench.hpp"
#include "gen/apps.hpp"
#include "machine/config.hpp"
#include "stats/stats.hpp"

using namespace merm;

namespace {

struct Outcome {
  double l1_hit_rate;
  std::uint64_t bus_transactions;
  sim::Tick time;
};

Outcome run(const machine::MachineParams& arch, std::uint32_t stride) {
  core::Workbench wb(arch);
  auto w = gen::make_offline_workload(
      1, [stride](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
        gen::compute_kernel(a, s, n,
                            gen::ComputeKernelParams{8192, 4, stride});
      });
  const auto r = wb.run_detailed(w);
  auto& mem = wb.machine().compute_node(0).memory();
  return Outcome{mem.l1(0, memory::AccessType::kLoad)->hit_rate(),
                 mem.bus().transactions.value(), r.simulated_time};
}

machine::MachineParams with_l1(std::uint64_t size, std::uint32_t assoc,
                               machine::WritePolicy policy,
                               bool keep_l2 = true) {
  machine::MachineParams arch = machine::presets::powerpc601_node();
  arch.node.memory.levels[0].size_bytes = size;
  arch.node.memory.levels[0].associativity = assoc;
  arch.node.memory.levels[0].write_policy = policy;
  if (!keep_l2) arch.node.memory.levels.resize(1);
  return arch;
}

}  // namespace

int main() {
  std::cout << "# E-F3: single-node cache parameterization sweeps "
               "(ppc601 model)\n\n";

  std::cout << "## L1 size sweep (sequential 128 KiB working set)\n";
  {
    stats::Table t({"L1", "hit rate", "bus txns", "sim time"});
    for (std::uint64_t size :
         {4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024}) {
      const Outcome o =
          run(with_l1(size, 8, machine::WritePolicy::kWriteBack), 1);
      t.add_row({sim::format_bytes(size), stats::Table::fmt(o.l1_hit_rate, 4),
                 std::to_string(o.bus_transactions),
                 sim::format_time(o.time)});
    }
    t.print(std::cout);
  }

  std::cout << "\n## associativity sweep (stride chosen to conflict, 8 KiB "
               "L1)\n";
  {
    stats::Table t({"ways", "hit rate", "sim time"});
    for (std::uint32_t ways : {1u, 2u, 4u, 8u}) {
      // Stride of 16 elements x 8 B = 128 B: hammers a subset of sets.
      const Outcome o = run(
          with_l1(8 * 1024, ways, machine::WritePolicy::kWriteBack), 16);
      t.add_row({std::to_string(ways), stats::Table::fmt(o.l1_hit_rate, 4),
                 sim::format_time(o.time)});
    }
    t.print(std::cout);
  }

  std::cout << "\n## write policy (32 KiB L1, no L2: writes must reach the "
               "bus)\n";
  {
    stats::Table t({"policy", "bus txns", "sim time"});
    const Outcome wb_o = run(
        with_l1(32 * 1024, 8, machine::WritePolicy::kWriteBack, false), 1);
    const Outcome wt_o = run(
        with_l1(32 * 1024, 8, machine::WritePolicy::kWriteThrough, false), 1);
    t.add_row({"write_back", std::to_string(wb_o.bus_transactions),
               sim::format_time(wb_o.time)});
    t.add_row({"write_through", std::to_string(wt_o.bus_transactions),
               sim::format_time(wt_o.time)});
    t.print(std::cout);
    std::cout << (wt_o.bus_transactions > wb_o.bus_transactions
                      ? "write-through raises bus traffic — HOLDS\n"
                      : "unexpected bus traffic relation — FAILS\n");
  }

  std::cout << "\n## does an L2 rescue a small L1? (8 KiB L1)\n";
  {
    stats::Table t({"hierarchy", "sim time"});
    const Outcome no_l2 = run(
        with_l1(8 * 1024, 8, machine::WritePolicy::kWriteBack, false), 1);
    const Outcome with_l2 =
        run(with_l1(8 * 1024, 8, machine::WritePolicy::kWriteBack, true), 1);
    t.add_row({"L1 only", sim::format_time(no_l2.time)});
    t.add_row({"L1 + 256 KiB L2", sim::format_time(with_l2.time)});
    t.print(std::cout);
    std::cout << (with_l2.time < no_l2.time
                      ? "second level pays for itself — HOLDS\n"
                      : "L2 did not help — FAILS\n");
  }
  return 0;
}
