// E-F3 (single-node template, Fig. 3a) — cache-hierarchy parameterization
// sweeps on the PowerPC 601 node model, run as parallel campaigns on the
// sweep engine (each candidate hierarchy on its own host thread).
//
// Shapes to hold: hit rate knees at the working-set size; associativity
// matters most for conflict-heavy strides; write-through raises bus traffic
// versus write-back; a second level rescues a small L1.
#include <iostream>
#include <vector>

#include "core/workbench.hpp"
#include "explore/sweep.hpp"
#include "gen/apps.hpp"
#include "machine/config.hpp"
#include "stats/stats.hpp"

using namespace merm;

namespace {

unsigned g_threads = 0;  // 0 = auto; set from --threads

struct Outcome {
  double l1_hit_rate;
  std::uint64_t bus_transactions;
  sim::Tick time;
};

/// Runs every architecture under the same strided kernel concurrently;
/// outcomes come back in grid order.
std::vector<Outcome> run_all(std::vector<machine::MachineParams> archs,
                             std::uint32_t stride) {
  explore::Sweep sweep;
  sweep.workload = [stride](const machine::MachineParams&, std::uint64_t) {
    return gen::make_offline_workload(
        1, [stride](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
          gen::compute_kernel(a, s, n,
                              gen::ComputeKernelParams{8192, 4, stride});
        });
  };
  sweep.probe = [](core::Workbench& wb, const core::RunResult&) {
    auto& mem = wb.machine().compute_node(0).memory();
    return std::vector<std::pair<std::string, double>>{
        {"l1_hit_rate", mem.l1(0, memory::AccessType::kLoad)->hit_rate()},
        {"bus_txns", static_cast<double>(mem.bus().transactions.value())}};
  };
  for (machine::MachineParams& arch : archs) sweep.add(std::move(arch));

  const explore::SweepResult result =
      explore::SweepEngine({.threads = g_threads}).run(sweep);
  std::vector<Outcome> outcomes;
  for (const explore::PointResult& p : result.points) {
    outcomes.push_back(Outcome{p.metrics[0].second,
                               static_cast<std::uint64_t>(p.metrics[1].second),
                               p.run.simulated_time});
  }
  return outcomes;
}

machine::MachineParams with_l1(std::uint64_t size, std::uint32_t assoc,
                               machine::WritePolicy policy,
                               bool keep_l2 = true) {
  machine::MachineParams arch = machine::presets::powerpc601_node();
  arch.node.memory.levels[0].size_bytes = size;
  arch.node.memory.levels[0].associativity = assoc;
  arch.node.memory.levels[0].write_policy = policy;
  if (!keep_l2) arch.node.memory.levels.resize(1);
  return arch;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    g_threads = explore::threads_from_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  std::cout << "# E-F3: single-node cache parameterization sweeps "
               "(ppc601 model)\n\n";

  std::cout << "## L1 size sweep (sequential 128 KiB working set)\n";
  {
    const std::vector<std::uint64_t> sizes = {4 * 1024, 16 * 1024, 64 * 1024,
                                              256 * 1024};
    std::vector<machine::MachineParams> archs;
    for (std::uint64_t size : sizes) {
      archs.push_back(with_l1(size, 8, machine::WritePolicy::kWriteBack));
    }
    const std::vector<Outcome> outcomes = run_all(std::move(archs), 1);
    stats::Table t({"L1", "hit rate", "bus txns", "sim time"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      t.add_row({sim::format_bytes(sizes[i]),
                 stats::Table::fmt(outcomes[i].l1_hit_rate, 4),
                 std::to_string(outcomes[i].bus_transactions),
                 sim::format_time(outcomes[i].time)});
    }
    t.print(std::cout);
  }

  std::cout << "\n## associativity sweep (stride chosen to conflict, 8 KiB "
               "L1)\n";
  {
    const std::vector<std::uint32_t> ways = {1u, 2u, 4u, 8u};
    std::vector<machine::MachineParams> archs;
    for (std::uint32_t w : ways) {
      archs.push_back(with_l1(8 * 1024, w, machine::WritePolicy::kWriteBack));
    }
    // Stride of 16 elements x 8 B = 128 B: hammers a subset of sets.
    const std::vector<Outcome> outcomes = run_all(std::move(archs), 16);
    stats::Table t({"ways", "hit rate", "sim time"});
    for (std::size_t i = 0; i < ways.size(); ++i) {
      t.add_row({std::to_string(ways[i]),
                 stats::Table::fmt(outcomes[i].l1_hit_rate, 4),
                 sim::format_time(outcomes[i].time)});
    }
    t.print(std::cout);
  }

  std::cout << "\n## write policy (32 KiB L1, no L2: writes must reach the "
               "bus)\n";
  {
    const std::vector<Outcome> outcomes = run_all(
        {with_l1(32 * 1024, 8, machine::WritePolicy::kWriteBack, false),
         with_l1(32 * 1024, 8, machine::WritePolicy::kWriteThrough, false)},
        1);
    const Outcome& wb_o = outcomes[0];
    const Outcome& wt_o = outcomes[1];
    stats::Table t({"policy", "bus txns", "sim time"});
    t.add_row({"write_back", std::to_string(wb_o.bus_transactions),
               sim::format_time(wb_o.time)});
    t.add_row({"write_through", std::to_string(wt_o.bus_transactions),
               sim::format_time(wt_o.time)});
    t.print(std::cout);
    std::cout << (wt_o.bus_transactions > wb_o.bus_transactions
                      ? "write-through raises bus traffic — HOLDS\n"
                      : "unexpected bus traffic relation — FAILS\n");
  }

  std::cout << "\n## does an L2 rescue a small L1? (8 KiB L1)\n";
  {
    const std::vector<Outcome> outcomes = run_all(
        {with_l1(8 * 1024, 8, machine::WritePolicy::kWriteBack, false),
         with_l1(8 * 1024, 8, machine::WritePolicy::kWriteBack, true)},
        1);
    const Outcome& no_l2 = outcomes[0];
    const Outcome& with_l2 = outcomes[1];
    stats::Table t({"hierarchy", "sim time"});
    t.add_row({"L1 only", sim::format_time(no_l2.time)});
    t.add_row({"L1 + 256 KiB L2", sim::format_time(with_l2.time)});
    t.print(std::cout);
    std::cout << (with_l2.time < no_l2.time
                      ? "second level pays for itself — HOLDS\n"
                      : "L2 did not help — FAILS\n");
  }
  return 0;
}
