// E-X1 (extension) — the paper's announced virtual shared memory
// (Section 5.1), quantified.
//
// Experiments:
//  1. programming-model cost: the same Jacobi stencil with explicit halo
//     messages vs through the DSM — the DSM hides communication at the cost
//     of page-granular traffic and fault software overhead;
//  2. page-size sweep: faults fall, bytes-per-fault rise (the classic DSM
//     granularity tradeoff), with an execution-time sweet spot;
//  3. false sharing: packed vs page-padded reduction slots.
#include <iostream>

#include "core/workbench.hpp"
#include "gen/apps.hpp"
#include "gen/vsm_apps.hpp"
#include "stats/stats.hpp"
#include "vsm/vsm.hpp"

using namespace merm;

namespace {

machine::MachineParams arch(std::uint32_t nodes) {
  machine::MachineParams m = machine::presets::generic_risc(nodes, 1);
  m.topology.kind = machine::TopologyKind::kRing;
  m.topology.dims = {nodes, 1};
  return m;
}

struct VsmRun {
  sim::Tick time;
  std::uint64_t faults;
  std::uint64_t messages;
  std::uint64_t bytes;
};

VsmRun run_vsm(std::uint32_t nodes, const gen::AppFn& app,
               vsm::VsmParams params = {}) {
  sim::Simulator sim;
  node::Machine machine(sim, arch(nodes));
  vsm::VsmSystem dsm(machine, params);
  auto w = gen::make_offline_workload(nodes, app);
  const auto handles = dsm.launch_detailed(w);
  sim.run();
  if (!node::Machine::all_finished(handles)) {
    throw std::runtime_error("VSM workload blocked");
  }
  return VsmRun{sim.now(), dsm.total_faults(),
                machine.network().messages.value(),
                machine.network().bytes_delivered.value()};
}

}  // namespace

int main() {
  std::cout << "# E-X1: virtual shared memory (Section 5.1 outlook)\n\n";
  constexpr std::uint32_t kNodes = 4;

  // 1. Explicit messages vs DSM for the same stencil.
  std::cout << "## programming-model cost (32x32 Jacobi, 2 iterations, "
            << kNodes << " nodes)\n";
  {
    sim::Simulator sim;
    node::Machine machine(sim, arch(kNodes));
    auto w = gen::make_offline_workload(
        kNodes, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
          gen::stencil_spmd(a, s, n, gen::StencilParams{32, 2});
        });
    machine.launch_detailed(w);
    sim.run();
    const sim::Tick msg_time = sim.now();
    const auto msg_bytes = machine.network().bytes_delivered.value();

    const VsmRun dsm = run_vsm(
        kNodes, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
          gen::vsm_stencil_spmd(a, s, n, gen::VsmStencilParams{32, 2});
        });

    stats::Table t({"programming model", "sim time", "network bytes",
                    "faults"});
    t.add_row({"explicit messages", sim::format_time(msg_time),
               std::to_string(msg_bytes), "-"});
    t.add_row({"virtual shared memory", sim::format_time(dsm.time),
               std::to_string(dsm.bytes), std::to_string(dsm.faults)});
    t.print(std::cout);
    std::cout << "shape: the DSM hides all data messages from the program "
                 "but moves\npage-granular traffic ("
              << stats::Table::fmt(static_cast<double>(dsm.bytes) /
                                       static_cast<double>(msg_bytes),
                                   1)
              << "x the bytes) and pays fault overhead — "
              << (dsm.bytes > msg_bytes && dsm.time > msg_time ? "HOLDS"
                                                               : "FAILS")
              << "\n\n";
  }

  // 2. Page-size sweep.
  std::cout << "## page-size sweep (vsm stencil, 64x64 grid)\n";
  {
    stats::Table t({"page", "faults", "network bytes", "sim time"});
    sim::Tick best = sim::kTickMax;
    sim::Tick first = 0;
    sim::Tick last = 0;
    for (const std::uint64_t page :
         {512u, 1024u, 4096u, 16384u, 65536u}) {
      vsm::VsmParams p;
      p.page_bytes = page;
      const VsmRun r = run_vsm(
          kNodes,
          [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
            gen::vsm_stencil_spmd(a, s, n, gen::VsmStencilParams{64, 2});
          },
          p);
      if (first == 0) first = r.time;
      last = r.time;
      best = std::min(best, r.time);
      t.add_row({sim::format_bytes(page), std::to_string(r.faults),
                 std::to_string(r.bytes), sim::format_time(r.time)});
    }
    t.print(std::cout);
    std::cout << "shape: small pages pay per-fault overhead; large pages "
                 "put several nodes'\nstrips on one page (false sharing) — "
                 "the execution-time optimum sits in\nbetween — "
              << (best < first && best < last ? "HOLDS" : "FAILS") << "\n\n";
  }

  // 3. False sharing: each node repeatedly updates its own counter with no
  // reader at all.  Padded: one cold fault per node.  Packed into one page:
  // every update steals the page back — pure protocol overhead.
  std::cout << "## false sharing (private counters, 64 updates per node)\n";
  {
    auto counter_app = [](bool padded) {
      return gen::AppFn(
          [padded](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
            gen::VarTable& vars = a.vars();
            std::vector<gen::VarId> slots;
            if (padded) {
              for (std::uint32_t i = 0; i < n; ++i) {
                slots.push_back(vars.declare_shared(
                    "c" + std::to_string(i), trace::DataType::kDouble, 1,
                    /*page_align=*/true));
              }
            } else {
              const gen::VarId packed_slots = vars.declare_shared(
                  "c", trace::DataType::kDouble, n, /*page_align=*/true);
              for (std::uint32_t i = 0; i < n; ++i) {
                slots.push_back(packed_slots);
              }
            }
            for (int it = 0; it < 64; ++it) {
              for (int w = 0; w < 20; ++w) {
                a.arith(trace::OpCode::kAdd, trace::DataType::kDouble);
              }
              const std::uint64_t idx =
                  padded ? 0 : static_cast<std::uint64_t>(s);
              a.store(slots[static_cast<std::size_t>(s)], idx);
            }
          });
    };
    const VsmRun packed = run_vsm(kNodes, counter_app(false));
    const VsmRun padded = run_vsm(kNodes, counter_app(true));
    stats::Table t({"layout", "faults", "network bytes", "sim time"});
    t.add_row({"packed (one page)", std::to_string(packed.faults),
               std::to_string(packed.bytes), sim::format_time(packed.time)});
    t.add_row({"padded (page per node)", std::to_string(padded.faults),
               std::to_string(padded.bytes), sim::format_time(padded.time)});
    t.print(std::cout);
    std::cout << "shape: false sharing turns every update into a page "
                 "migration — "
              << (packed.faults > 8 * padded.faults &&
                          packed.time > padded.time
                      ? "HOLDS"
                      : "FAILS")
              << "\n";
  }
  return 0;
}
