// E-A2 — trace validity under physical-time interleaving (Sections 2, 3.1).
//
// The experiment behind the paper's methodology choice: a program whose
// control flow depends on observed communication timing is traced (a) live,
// interleaved with each target architecture, and (b) once, naively, on a
// reference architecture and replayed elsewhere.
//
// Shapes to hold:
//  - interleaved traces differ across architectures (operation counts move
//    with network speed);
//  - the naive replayed trace is identical everywhere, and its predicted
//    time on the "other" machine deviates from the interleaved truth;
//  - for timing-independent programs both methods agree exactly (so the
//    cheap method is safe precisely where the paper says it is).
#include <iostream>

#include "core/workbench.hpp"
#include "gen/apps.hpp"
#include "gen/threaded_source.hpp"
#include "stats/stats.hpp"

using namespace merm;

namespace {

// Timing-adaptive ping-pong: each round, if the observed round-trip exceeds
// the deadline, the node performs catch-up work (architecture-dependent
// control flow).
trace::Workload make_adaptive_workload(sim::Tick deadline,
                                       std::uint32_t rounds) {
  trace::Workload w;
  for (trace::NodeId self = 0; self < 2; ++self) {
    w.sources.push_back(std::make_unique<gen::ThreadedSource>(
        [self, deadline, rounds](gen::AppContext& ctx) {
          gen::VarTable vars;
          gen::Annotator a(vars, ctx);
          const gen::VarId x =
              vars.declare_global("x", trace::DataType::kDouble);
          const trace::NodeId peer = 1 - self;
          for (std::uint32_t round = 0; round < rounds; ++round) {
            const sim::Tick before = ctx.now();
            const auto tag = static_cast<std::int32_t>(round);
            if (self == 0) {
              a.send(2048, peer, tag);
              a.recv(peer, tag);
            } else {
              a.recv(peer, tag);
              a.send(2048, peer, tag);
            }
            if (ctx.now() - before > deadline) {
              for (int i = 0; i < 400; ++i) {
                a.binop(trace::OpCode::kAdd, x, x, x);
              }
            }
          }
        }));
  }
  return w;
}

struct RunInfo {
  sim::Tick time;
  std::uint64_t ops;
};

RunInfo run_interleaved(const machine::MachineParams& arch, sim::Tick deadline) {
  core::Workbench wb(arch);
  auto w = make_adaptive_workload(deadline, 16);
  const auto r = wb.run_detailed(w);
  if (!r.completed) throw std::runtime_error("run blocked");
  return {r.simulated_time, r.operations};
}

}  // namespace

int main() {
  std::cout << "# E-A2: physical-time interleaving vs naive trace reuse\n\n";

  const sim::Tick deadline = 150 * sim::kTicksPerMicrosecond;
  const auto fast = machine::presets::generic_risc(2, 1);
  const auto slow = machine::presets::t805_multicomputer(2, 1);

  // (1) interleaved generation on each architecture.
  const RunInfo on_fast = run_interleaved(fast, deadline);
  const RunInfo on_slow = run_interleaved(slow, deadline);

  stats::Table t({"architecture", "method", "operations", "sim time"});
  t.add_row({fast.name, "interleaved", std::to_string(on_fast.ops),
             sim::format_time(on_fast.time)});
  t.add_row({slow.name, "interleaved", std::to_string(on_slow.ops),
             sim::format_time(on_slow.time)});

  // (2) naive: record the trace once on the fast machine (no catch-up work
  // triggers), replay it unchanged on the slow machine.
  std::vector<std::vector<trace::Operation>> recorded;
  {
    core::Workbench wb(fast);
    trace::Workload live = make_adaptive_workload(deadline, 16);
    trace::Workload recording;
    for (auto& src : live.sources) {
      recording.sources.push_back(
          std::make_unique<trace::RecordingSource>(std::move(src)));
    }
    const auto r = wb.run_detailed(recording);
    if (!r.completed) return 1;
    for (auto& src : recording.sources) {
      recorded.push_back(
          static_cast<trace::RecordingSource&>(*src).recorded());
    }
  }
  RunInfo replayed{};
  {
    core::Workbench wb(slow);
    trace::Workload w;
    std::uint64_t ops = 0;
    for (auto& tr : recorded) {
      ops += tr.size();
      w.sources.push_back(std::make_unique<trace::VectorSource>(tr));
    }
    const auto r = wb.run_detailed(w);
    if (!r.completed) return 1;
    replayed = {r.simulated_time, r.operations};
  }
  t.add_row({slow.name, "naive replay (fast-machine trace)",
             std::to_string(replayed.ops), sim::format_time(replayed.time)});
  t.print(std::cout);

  const double err = std::abs(static_cast<double>(replayed.time) -
                              static_cast<double>(on_slow.time)) /
                     static_cast<double>(on_slow.time);
  std::cout << "\ninterleaved traces differ across machines: "
            << (on_slow.ops > on_fast.ops ? "HOLDS" : "FAILS") << " ("
            << on_slow.ops << " vs " << on_fast.ops << " ops)\n";
  std::cout << "naive replay mispredicts the slow machine by "
            << stats::Table::fmt(100 * err, 1) << "% ("
            << sim::format_time(replayed.time) << " vs "
            << sim::format_time(on_slow.time) << " truth)\n";

  // (3) control: a timing-independent kernel agrees exactly both ways.
  {
    const gen::AppFn app = [](gen::Annotator& a, trace::NodeId s,
                              std::uint32_t n) {
      gen::stencil_spmd(a, s, n, gen::StencilParams{16, 2});
    };
    core::Workbench wb1(slow);
    auto threaded = gen::make_threaded_workload(2, app);
    const auto r1 = wb1.run_detailed(threaded);
    core::Workbench wb2(slow);
    auto offline = gen::make_offline_workload(2, app);
    const auto r2 = wb2.run_detailed(offline);
    std::cout << "timing-independent control: interleaved == offline: "
              << (r1.simulated_time == r2.simulated_time ? "HOLDS" : "FAILS")
              << "\n";
  }
  return (on_slow.ops > on_fast.ops && err > 0.01) ? 0 : 1;
}
