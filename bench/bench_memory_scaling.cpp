// E-S6c — Section 6, simulator memory usage.
//
// Paper: because no machine instructions are interpreted, memory contents
// are not modelled and caches hold only tags, the simulator's footprint
// stays small and "the simulation of parallel platforms is only constrained
// by the memory consumption of the (threaded) trace-generating
// applications".
//
// We measure (a) the model-state footprint as node count scales 2 -> 64,
// (b) the tags-only cache economy (model bytes per modelled cache byte),
// and (c) the host RSS growth for a full detailed run, showing trace
// generation, not the architecture model, dominates.
#include <fstream>
#include <iostream>
#include <string>

#include "core/workbench.hpp"
#include "gen/apps.hpp"
#include "gen/stochastic.hpp"
#include "stats/stats.hpp"

using namespace merm;

namespace {

// Current resident set size from /proc (Linux).
std::size_t rss_bytes() {
  std::ifstream statm("/proc/self/statm");
  std::size_t size_pages = 0;
  std::size_t resident_pages = 0;
  statm >> size_pages >> resident_pages;
  return resident_pages * 4096;
}

}  // namespace

int main() {
  std::cout << "# E-S6c: simulator memory usage\n\n";

  // (a) model footprint vs node count.
  stats::Table scaling({"nodes", "model footprint", "bytes/node"});
  for (std::uint32_t side : {2u, 4u, 6u, 8u}) {
    sim::Simulator sim;
    node::Machine m(sim, machine::presets::generic_risc(side, side));
    const std::size_t fp = m.footprint_bytes();
    scaling.add_row({std::to_string(side * side), sim::format_bytes(fp),
                     std::to_string(fp / (side * side))});
  }
  scaling.print(std::cout);

  // (b) tags-only economy: modelled cache capacity vs tag-store bytes.
  {
    sim::Simulator sim;
    node::Machine m(sim, machine::presets::powerpc601_node());
    const auto& levels =
        machine::presets::powerpc601_node().node.memory.levels;
    std::uint64_t modelled = 0;
    for (const auto& l : levels) modelled += l.size_bytes;
    const std::size_t fp = m.compute_node(0).memory().footprint_bytes();
    std::cout << "\nppc601 node models " << sim::format_bytes(modelled)
              << " of cache in " << sim::format_bytes(fp)
              << " of simulator state ("
              << stats::Table::fmt(
                     static_cast<double>(fp) / static_cast<double>(modelled),
                     3)
              << " bytes/byte; tags only, no data)\n\n";
  }

  // (c) end-to-end RSS: architecture model vs trace-generating application.
  stats::Table rss({"phase", "RSS delta"});
  const std::size_t base = rss_bytes();
  {
    core::Workbench wb(machine::presets::t805_multicomputer(4, 4));
    const std::size_t after_model = rss_bytes();
    auto w = gen::make_offline_workload(
        16, [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
          gen::stencil_spmd(a, s, n, gen::StencilParams{64, 6});
        });
    const std::size_t after_traces = rss_bytes();
    const auto r = wb.run_detailed(w);
    const std::size_t after_run = rss_bytes();
    rss.add_row({"architecture model (16 nodes)",
                 sim::format_bytes(after_model - base)});
    rss.add_row({"offline trace generation",
                 sim::format_bytes(after_traces - after_model)});
    rss.add_row({"detailed simulation run",
                 sim::format_bytes(after_run > after_traces
                                       ? after_run - after_traces
                                       : 0)});
    if (!r.completed) return 1;
  }
  rss.print(std::cout);
  std::cout << "\nshape check: footprint grows ~linearly with nodes and the "
               "trace-generating\napplication dominates the architecture "
               "model — as the paper argues.\n";
  return 0;
}
